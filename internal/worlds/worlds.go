// Package worlds implements the nonsuccinct probabilistic-database model
// from the beginning of Section 2 of the paper: a finite weighted set of
// possible worlds, each a structure of named relations, with weights
// summing to 1. All UA operations are applied world-wise; conf is an
// aggregation across the world set (Proposition 3.5: LOGSPACE data
// complexity on this representation).
//
// This engine is the reference semantics: the U-relational evaluator is
// cross-checked against it on every operation, which is the executable
// form of the parsimonious-translation correctness results cited from [1].
package worlds

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/expr"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// World is one possible world: a probability and a set of named relations.
type World struct {
	P    float64
	Rels map[string]*rel.Relation
}

// Clone deep-copies the world.
func (w World) Clone() World {
	rels := make(map[string]*rel.Relation, len(w.Rels))
	for n, r := range w.Rels {
		rels[n] = r.Clone()
	}
	return World{P: w.P, Rels: rels}
}

// Database is a weighted set of possible worlds over a fixed set of
// relation names, with the paper's completeness function c.
type Database struct {
	Worlds   []World
	Complete map[string]bool
}

// Validate checks the probabilistic-database invariants: weights positive
// and summing to 1, every world defining the same relation names with the
// same schemas, and relations marked complete agreeing across worlds.
func (db *Database) Validate() error {
	if len(db.Worlds) == 0 {
		return fmt.Errorf("worlds: no possible worlds")
	}
	sum := 0.0
	ref := db.Worlds[0].Rels
	for i, w := range db.Worlds {
		if w.P <= 0 {
			return fmt.Errorf("worlds: world %d has non-positive probability %v", i, w.P)
		}
		sum += w.P
		if len(w.Rels) != len(ref) {
			return fmt.Errorf("worlds: world %d has %d relations, world 0 has %d", i, len(w.Rels), len(ref))
		}
		for n, r := range w.Rels {
			r0, ok := ref[n]
			if !ok {
				return fmt.Errorf("worlds: world %d has unknown relation %q", i, n)
			}
			if !r.Schema().Equal(r0.Schema()) {
				return fmt.Errorf("worlds: relation %q schema differs across worlds", n)
			}
			if db.Complete[n] && !r.Equal(r0) {
				return fmt.Errorf("worlds: complete relation %q differs across worlds", n)
			}
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("worlds: probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Map applies fn to relation name in every world, producing relation out;
// it implements the paper's world-wise semantics of relational algebra
// operations.
func (db *Database) Map(out string, fn func(w World) *rel.Relation) *Database {
	res := &Database{Complete: cloneFlags(db.Complete)}
	for _, w := range db.Worlds {
		nw := w.Clone()
		nw.Rels[out] = fn(w)
		res.Worlds = append(res.Worlds, nw)
	}
	return res
}

func cloneFlags(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Poss returns the union of the relation across worlds.
func (db *Database) Poss(name string) *rel.Relation {
	var out *rel.Relation
	for _, w := range db.Worlds {
		r := w.Rels[name]
		if out == nil {
			out = rel.NewRelation(r.Schema())
		}
		for _, t := range r.Tuples() {
			out.Add(t)
		}
	}
	return out
}

// Conf computes the confidence relation: for each possible tuple, the sum
// of the weights of the worlds containing it. The result is a complete
// relation with schema sch(R) ∪ {pcol}.
func (db *Database) Conf(name, pcol string) *rel.Relation {
	poss := db.Poss(name)
	out := rel.NewRelation(rel.NewSchema(append(poss.Schema().Clone(), pcol)...))
	for _, t := range poss.Tuples() {
		p := 0.0
		for _, w := range db.Worlds {
			if w.Rels[name].Contains(t) {
				p += w.P
			}
		}
		out.Add(append(t.Clone(), rel.Float(p)))
	}
	return out
}

// TupleConfidence returns the probability of one tuple being in the named
// relation.
func (db *Database) TupleConfidence(name string, t rel.Tuple) float64 {
	p := 0.0
	for _, w := range db.Worlds {
		if w.Rels[name].Contains(t) {
			p += w.P
		}
	}
	return p
}

// RepairKey splits every world by the repairs of the named relation: each
// maximal key-respecting subset obtained by keeping exactly one tuple per
// key group, weighted by the relative weights of the kept tuples. For a
// relation that is complete across worlds this is exactly the paper's
// W ⊗ repair-key(R) construction.
func (db *Database) RepairKey(out, name string, key []string, weight string) (*Database, error) {
	res := &Database{Complete: cloneFlags(db.Complete)}
	res.Complete[out] = false
	for _, w := range db.Worlds {
		repairs, err := enumerateRepairs(w.Rels[name], key, weight)
		if err != nil {
			return nil, err
		}
		for _, rp := range repairs {
			nw := w.Clone()
			nw.P = w.P * rp.p
			nw.Rels[out] = rp.rel
			res.Worlds = append(res.Worlds, nw)
		}
	}
	return res, nil
}

type repair struct {
	rel *rel.Relation
	p   float64
}

// enumerateRepairs lists all key repairs of r with their probabilities.
func enumerateRepairs(r *rel.Relation, key []string, weight string) ([]repair, error) {
	schema := r.Schema()
	keyIdx := make([]int, len(key))
	for i, a := range key {
		j := schema.Index(a)
		if j < 0 {
			return nil, fmt.Errorf("worlds: repair-key attribute %q not in schema %v", a, schema)
		}
		keyIdx[i] = j
	}
	wIdx := schema.Index(weight)
	if wIdx < 0 {
		return nil, fmt.Errorf("worlds: repair-key weight %q not in schema %v", weight, schema)
	}
	// Group tuples by key values.
	type group struct {
		tuples []rel.Tuple
		total  float64
	}
	var order []string
	groups := make(map[string]*group)
	for _, t := range r.Tuples() {
		sub := make(rel.Tuple, len(keyIdx))
		for i, j := range keyIdx {
			sub[i] = t[j]
		}
		k := sub.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		wv := t[wIdx]
		if !wv.IsNumeric() || wv.AsFloat() <= 0 {
			return nil, fmt.Errorf("worlds: repair-key weight %v is not a positive number", wv)
		}
		g.tuples = append(g.tuples, t)
		g.total += wv.AsFloat()
	}
	// Cartesian product over groups: one tuple per group.
	repairs := []repair{{rel: rel.NewRelation(schema), p: 1}}
	for _, k := range order {
		g := groups[k]
		next := make([]repair, 0, len(repairs)*len(g.tuples))
		for _, rp := range repairs {
			for _, t := range g.tuples {
				nr := rp.rel.Clone()
				nr.Add(t)
				next = append(next, repair{rel: nr, p: rp.p * t[wIdx].AsFloat() / g.total})
			}
		}
		repairs = next
	}
	return repairs, nil
}

// Normalize merges worlds whose relations are all equal, summing weights.
// Comparing query results across evaluators uses normalized databases.
func (db *Database) Normalize() *Database {
	type bucket struct {
		w World
	}
	var order []string
	merged := make(map[string]*bucket)
	for _, w := range db.Worlds {
		k := worldKey(w)
		if b, ok := merged[k]; ok {
			b.w.P += w.P
			continue
		}
		merged[k] = &bucket{w: w.Clone()}
		order = append(order, k)
	}
	out := &Database{Complete: cloneFlags(db.Complete)}
	for _, k := range order {
		out.Worlds = append(out.Worlds, merged[k].w)
	}
	return out
}

func worldKey(w World) string {
	names := make([]string, 0, len(w.Rels))
	for n := range w.Rels {
		names = append(names, n)
	}
	sort.Strings(names)
	key := ""
	for _, n := range names {
		key += n + "{"
		for _, t := range w.Rels[n].Sorted() {
			key += t.Key() + ";"
		}
		key += "}"
	}
	return key
}

// SelectWorldwise, ProjectWorldwise etc. are thin helpers exposing the
// world-wise relational algebra used by the reference evaluator.

// SelectWorldwise applies σ in every world.
func SelectWorldwise(r *rel.Relation, pred expr.Pred) *rel.Relation {
	out := rel.NewRelation(r.Schema())
	for _, t := range r.Tuples() {
		if pred.Holds(expr.Env{Schema: r.Schema(), Tuple: t}) {
			out.Add(t)
		}
	}
	return out
}

// ProjectWorldwise applies the generalized projection in one world.
func ProjectWorldwise(r *rel.Relation, targets []expr.Target) *rel.Relation {
	schema := make(rel.Schema, len(targets))
	for i, tg := range targets {
		schema[i] = tg.As
	}
	out := rel.NewRelation(rel.NewSchema(schema...))
	for _, t := range r.Tuples() {
		env := expr.Env{Schema: r.Schema(), Tuple: t}
		row := make(rel.Tuple, len(targets))
		for i, tg := range targets {
			row[i] = tg.Expr.Eval(env)
		}
		out.Add(row)
	}
	return out
}

// ProductWorldwise applies × in one world; attribute names must be
// disjoint.
func ProductWorldwise(a, b *rel.Relation) (*rel.Relation, error) {
	for _, attr := range b.Schema() {
		if a.Schema().Has(attr) {
			return nil, fmt.Errorf("worlds: product schemas share attribute %q", attr)
		}
	}
	out := rel.NewRelation(rel.NewSchema(append(a.Schema().Clone(), b.Schema()...)...))
	for _, ta := range a.Tuples() {
		for _, tb := range b.Tuples() {
			out.Add(append(ta.Clone(), tb...))
		}
	}
	return out, nil
}

// JoinWorldwise applies the natural join in one world.
func JoinWorldwise(a, b *rel.Relation) *rel.Relation {
	common := a.Schema().Common(b.Schema())
	var bExtra []string
	for _, attr := range b.Schema() {
		if !a.Schema().Has(attr) {
			bExtra = append(bExtra, attr)
		}
	}
	out := rel.NewRelation(rel.NewSchema(append(a.Schema().Clone(), bExtra...)...))
	for _, ta := range a.Tuples() {
		for _, tb := range b.Tuples() {
			match := true
			for _, c := range common {
				if !rel.Equal(a.Value(ta, c), b.Value(tb, c)) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			row := ta.Clone()
			for _, c := range bExtra {
				row = append(row, b.Value(tb, c))
			}
			out.Add(row)
		}
	}
	return out
}

// UnionWorldwise applies ∪ in one world.
func UnionWorldwise(a, b *rel.Relation) (*rel.Relation, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("worlds: union schema mismatch")
	}
	out := a.Clone()
	for _, t := range b.Tuples() {
		out.Add(t)
	}
	return out, nil
}

// DiffWorldwise applies − in one world.
func DiffWorldwise(a, b *rel.Relation) (*rel.Relation, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("worlds: difference schema mismatch")
	}
	out := rel.NewRelation(a.Schema())
	for _, t := range a.Tuples() {
		if !b.Contains(t) {
			out.Add(t)
		}
	}
	return out, nil
}

// Expand converts a U-relational database into its explicit set of
// possible worlds by enumerating all total assignments of the variable
// table (Theorem 3.1 direction "representation → worlds"). The limit
// guards against exponential blowups in tests.
func Expand(db *urel.Database, limit int64) (*Database, error) {
	n := db.Vars.WorldCount()
	if n < 0 || (limit > 0 && n > limit) {
		return nil, fmt.Errorf("worlds: world count %d exceeds limit %d", n, limit)
	}
	out := &Database{Complete: cloneFlags(db.Complete)}
	vars.EnumWorlds(db.Vars, limit, func(w vars.World, weight float64) {
		rels := make(map[string]*rel.Relation, len(db.Rels))
		for name, ur := range db.Rels {
			r := rel.NewRelation(ur.Schema())
			for _, ut := range ur.Tuples() {
				if w.Satisfies(ut.D) {
					r.Add(ut.Row)
				}
			}
			rels[name] = r
		}
		out.Worlds = append(out.Worlds, World{P: weight, Rels: rels})
	})
	return out, nil
}
