package worlds

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// Proposition 3.5: on the nonsuccinct representation, conf is a single
// aggregation pass — verify it against per-world membership for random
// databases.
func TestConfIsAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		nw := 1 + rng.Intn(6)
		weights := make([]float64, nw)
		sum := 0.0
		for i := range weights {
			weights[i] = rng.Float64() + 0.1
			sum += weights[i]
		}
		db := &Database{}
		want := map[string]float64{}
		for i := 0; i < nw; i++ {
			r := rel.NewRelation(rel.NewSchema("A"))
			for v := 0; v < 3; v++ {
				if rng.Intn(2) == 0 {
					tp := rel.Tuple{rel.Int(int64(v))}
					r.Add(tp)
					want[tp.Key()] += weights[i] / sum
				}
			}
			db.Worlds = append(db.Worlds, World{P: weights[i] / sum, Rels: map[string]*rel.Relation{"R": r}})
		}
		conf := db.Conf("R", "P")
		for _, tp := range conf.Tuples() {
			key := tp[:1].Key()
			if math.Abs(tp[1].AsFloat()-want[key]) > 1e-9 {
				t.Fatalf("trial %d: conf(%v) = %v, want %v", trial, tp[0], tp[1], want[key])
			}
		}
	}
}

// Expand followed by FromWorldSet followed by Expand preserves tuple
// confidences — the two directions of Theorem 3.1 compose.
func TestTheorem31BothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		// Random U-relational database.
		udb := urel.NewDatabase()
		nv := 1 + rng.Intn(3)
		for i := 0; i < nv; i++ {
			p := 0.2 + 0.6*rng.Float64()
			udb.Vars.Add("v"+strconv.Itoa(i), []float64{p, 1 - p}, nil)
		}
		r := urel.NewRelation(rel.NewSchema("A"))
		for i := 0; i < 2+rng.Intn(4); i++ {
			var bs []vars.Binding
			for v := 0; v < nv; v++ {
				if rng.Intn(2) == 0 {
					bs = append(bs, vars.Binding{Var: vars.Var(v), Alt: int32(rng.Intn(2))})
				}
			}
			a, _ := vars.NewAssignment(bs...)
			r.Add(a, rel.Tuple{rel.Int(int64(rng.Intn(3)))})
		}
		udb.AddURelation("R", r, false)

		// worlds → spec → urel → worlds.
		w1, err := Expand(udb, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		norm := w1.Normalize()
		specs := make([]urel.WorldSpec, len(norm.Worlds))
		for i, w := range norm.Worlds {
			specs[i] = urel.WorldSpec{P: w.P, Rels: w.Rels}
		}
		udb2, err := urel.FromWorldSet(specs, nil)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := Expand(udb2, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		// Compare tuple confidences.
		for _, tp := range w1.Poss("R").Tuples() {
			p1 := w1.TupleConfidence("R", tp)
			p2 := w2.TupleConfidence("R", tp)
			if math.Abs(p1-p2) > 1e-9 {
				t.Fatalf("trial %d: round trip changed conf(%v): %v vs %v", trial, tp, p1, p2)
			}
		}
	}
}

func TestRepairKeyErrors(t *testing.T) {
	r := rel.FromRows(rel.NewSchema("A", "W"), rel.Tuple{rel.Int(1), rel.Int(0)})
	db := &Database{Worlds: []World{{P: 1, Rels: map[string]*rel.Relation{"R": r}}}}
	if _, err := db.RepairKey("S", "R", nil, "W"); err == nil {
		t.Error("zero weight must fail")
	}
	if _, err := db.RepairKey("S", "R", []string{"missing"}, "W"); err == nil {
		t.Error("missing key attr must fail")
	}
	if _, err := db.RepairKey("S", "R", nil, "missing"); err == nil {
		t.Error("missing weight attr must fail")
	}
}

func BenchmarkExpand(b *testing.B) {
	udb := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("A"))
	for i := 0; i < 12; i++ {
		v := udb.Vars.Add("v"+strconv.Itoa(i), []float64{0.5, 0.5}, nil)
		r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
	}
	udb.AddURelation("R", r, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Expand(udb, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalize(b *testing.B) {
	r1 := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(1)})
	r2 := rel.FromRows(rel.NewSchema("A"), rel.Tuple{rel.Int(2)})
	db := &Database{}
	for i := 0; i < 256; i++ {
		r := r1
		if i%2 == 0 {
			r = r2
		}
		db.Worlds = append(db.Worlds, World{P: 1.0 / 256, Rels: map[string]*rel.Relation{"R": r.Clone()}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Normalize()
	}
}
