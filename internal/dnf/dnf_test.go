package dnf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vars"
)

// newTable builds a table of n binary variables with random probabilities.
func newTable(rng *rand.Rand, n int) *vars.Table {
	t := vars.NewTable()
	for i := 0; i < n; i++ {
		p := 0.05 + 0.9*rng.Float64()
		t.Add(varName(i), []float64{p, 1 - p}, nil)
	}
	return t
}

func varName(i int) string {
	return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// randomF builds a random clause set over the table's variables.
func randomF(rng *rand.Rand, t *vars.Table, maxClauses, maxLits int) F {
	nc := 1 + rng.Intn(maxClauses)
	f := make(F, 0, nc)
	for i := 0; i < nc; i++ {
		nl := 1 + rng.Intn(maxLits)
		var bs []vars.Binding
		for j := 0; j < nl; j++ {
			v := vars.Var(rng.Intn(t.Len()))
			bs = append(bs, vars.Binding{Var: v, Alt: int32(rng.Intn(t.DomSize(v)))})
		}
		a, err := vars.NewAssignment(bs...)
		if err != nil {
			continue // conflicting random clause; skip
		}
		f = append(f, a)
	}
	if len(f) == 0 {
		f = append(f, vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}))
	}
	return f
}

func TestConfidenceSingleClause(t *testing.T) {
	tab := vars.NewTable()
	tab.Add("x", []float64{0.3, 0.7}, nil)
	tab.Add("y", []float64{0.5, 0.5}, nil)
	f := F{vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}, vars.Binding{Var: 1, Alt: 1})}
	want := 0.3 * 0.5
	if got := Confidence(f, tab); math.Abs(got-want) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", got, want)
	}
}

func TestConfidenceEdgeCases(t *testing.T) {
	tab := vars.NewTable()
	tab.Add("x", []float64{0.3, 0.7}, nil)
	if got := Confidence(nil, tab); got != 0 {
		t.Errorf("empty F = %v, want 0", got)
	}
	// A clause with the empty assignment is certain.
	f := F{vars.Assignment{}, vars.MustAssignment(vars.Binding{Var: 0, Alt: 0})}
	if got := Confidence(f, tab); got != 1 {
		t.Errorf("F with empty clause = %v, want 1", got)
	}
	// Complementary alternatives of one variable cover everything.
	g := F{
		vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: 0, Alt: 1}),
	}
	if got := Confidence(g, tab); math.Abs(got-1) > 1e-12 {
		t.Errorf("complementary clauses = %v, want 1", got)
	}
}

func TestConfidenceIndependentClauses(t *testing.T) {
	tab := vars.NewTable()
	tab.Add("x", []float64{0.3, 0.7}, nil)
	tab.Add("y", []float64{0.4, 0.6}, nil)
	f := F{
		vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: 1, Alt: 0}),
	}
	want := 1 - (1-0.3)*(1-0.4)
	if got := Confidence(f, tab); math.Abs(got-want) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", got, want)
	}
}

func TestDedup(t *testing.T) {
	a := vars.MustAssignment(vars.Binding{Var: 0, Alt: 0})
	f := F{a, a, a}
	if got := f.Dedup(); len(got) != 1 {
		t.Errorf("Dedup len = %d", len(got))
	}
	g := F{a, vars.Assignment{}}
	d := g.Dedup()
	if len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("Dedup with empty clause = %v", d)
	}
}

func TestVarsAndTotalWeight(t *testing.T) {
	tab := vars.NewTable()
	tab.Add("x", []float64{0.3, 0.7}, nil)
	tab.Add("y", []float64{0.4, 0.6}, nil)
	f := F{
		vars.MustAssignment(vars.Binding{Var: 1, Alt: 0}),
		vars.MustAssignment(vars.Binding{Var: 0, Alt: 0}, vars.Binding{Var: 1, Alt: 0}),
	}
	vs := f.Vars()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Errorf("Vars = %v", vs)
	}
	want := 0.4 + 0.3*0.4
	if got := f.TotalWeight(tab); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalWeight = %v, want %v", got, want)
	}
}

// The three exact evaluators must agree on random instances.
func TestExactEvaluatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		tab := newTable(rng, 2+rng.Intn(6))
		f := randomF(rng, tab, 6, 3)
		pS := Confidence(f, tab)
		pE := ConfidenceByEnumeration(f, tab)
		pI := ConfidenceByInclusionExclusion(f, tab)
		if math.Abs(pS-pE) > 1e-9 {
			t.Fatalf("trial %d: shannon %v != enumeration %v (F=%v)", trial, pS, pE, f)
		}
		if math.Abs(pI-pE) > 1e-9 {
			t.Fatalf("trial %d: inclusion-exclusion %v != enumeration %v", trial, pI, pE)
		}
		if pS < -1e-12 || pS > 1+1e-12 {
			t.Fatalf("confidence out of range: %v", pS)
		}
	}
}

// Confidence is monotone: adding a clause can only increase it.
func TestConfidenceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tab := newTable(rng, 5)
		f := randomF(rng, tab, 4, 3)
		p1 := Confidence(f, tab)
		g := append(f.Clone(), randomF(rng, tab, 1, 3)...)
		p2 := Confidence(g, tab)
		if p2 < p1-1e-9 {
			t.Fatalf("adding a clause decreased confidence: %v -> %v", p1, p2)
		}
	}
}

// Multi-valued variables: the coin-example structure from the paper.
func TestConfidenceMultiValued(t *testing.T) {
	tab := vars.NewTable()
	coin := tab.Add("coin", []float64{2.0 / 3, 1.0 / 3}, []string{"fair", "2headed"})
	t1 := tab.Add("toss1", []float64{0.5, 0.5}, []string{"H", "T"})
	t2 := tab.Add("toss2", []float64{0.5, 0.5}, []string{"H", "T"})
	// Tuple "fair" in T requires coin=fair ∧ toss1=H ∧ toss2=H.
	fFair := F{vars.MustAssignment(
		vars.Binding{Var: coin, Alt: 0},
		vars.Binding{Var: t1, Alt: 0},
		vars.Binding{Var: t2, Alt: 0},
	)}
	if got := Confidence(fFair, tab); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("P(fair,HH) = %v, want 1/6", got)
	}
	// Tuple "2headed" requires only coin=2headed.
	f2h := F{vars.MustAssignment(vars.Binding{Var: coin, Alt: 1})}
	if got := Confidence(f2h, tab); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("P(2headed) = %v, want 1/3", got)
	}
	// π∅(T): some tuple exists — disjunction of both clauses.
	both := F{fFair[0], f2h[0]}
	if got := Confidence(both, tab); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(T nonempty) = %v, want 1/2", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := F{vars.MustAssignment(vars.Binding{Var: 0, Alt: 0})}
	g := f.Clone()
	g[0] = g[0].With(1, 1)
	if f[0].Len() != 1 {
		t.Error("Clone not deep")
	}
}

func BenchmarkConfidenceShannon(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := newTable(rng, 14)
	f := randomF(rng, tab, 12, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Confidence(f, tab)
	}
}

func BenchmarkConfidenceEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tab := newTable(rng, 14)
	f := randomF(rng, tab, 12, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConfidenceByEnumeration(f, tab)
	}
}
