// Package dnf computes the exact confidence of a tuple represented in a
// U-relational database: the probability that at least one of a set F of
// partial assignments ("clauses") is extended by the random world,
//
//	p = Σ_{f*: ∃f∈F, f* ∈ ω(f)} p_{f*},
//
// as defined at the start of Section 4 of the paper. Exact confidence is
// #P-complete (Theorem 3.4); this package provides an exact solver used as
// ground truth for the Karp–Luby FPRAS and for small query evaluation:
//
//   - independent-component factoring: clauses are partitioned into
//     connected components by shared variables; components are disjoint in
//     variables, hence independent, so p = 1 − Π(1 − p_component);
//   - within a component, memoized Shannon expansion on variables;
//   - a brute-force world-enumeration evaluator and an inclusion–exclusion
//     evaluator used for cross-checks in tests.
package dnf

import (
	"sort"
	"strings"

	"repro/internal/vars"
)

// F is a disjunction of partial assignments (the clause set of one tuple).
// The order of clauses matters only to the Karp–Luby estimator's
// smallest-index rule; confidence is order-independent.
type F []vars.Assignment

// Clone returns a deep copy.
func (f F) Clone() F {
	out := make(F, len(f))
	for i, a := range f {
		out[i] = a.Clone()
	}
	return out
}

// TotalWeight returns M = Σ_f p_f, the normalization constant of the
// Karp–Luby estimator.
func (f F) TotalWeight(t *vars.Table) float64 {
	m := 0.0
	for _, a := range f {
		m += a.Weight(t)
	}
	return m
}

// Vars returns the sorted distinct variables mentioned by any clause.
func (f F) Vars() []vars.Var {
	var vs []vars.Var
	for _, a := range f {
		vs = a.Vars(vs)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// Dedup removes duplicate clauses and clauses subsumed by the empty
// assignment: if any clause is empty the whole disjunction is certain.
func (f F) Dedup() F {
	seen := make(map[string]bool, len(f))
	out := make(F, 0, len(f))
	for _, a := range f {
		if len(a) == 0 {
			return F{vars.Assignment{}}
		}
		k := a.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// Confidence computes the exact probability that a random world extends at
// least one clause of f, using component factoring plus memoized Shannon
// expansion.
func Confidence(f F, t *vars.Table) float64 {
	f = f.Dedup()
	if len(f) == 0 {
		return 0
	}
	if len(f[0]) == 0 {
		return 1
	}
	comps := components(f)
	p := 1.0
	for _, comp := range comps {
		pc := shannon(comp, t, make(map[string]float64))
		p *= 1 - pc
	}
	return 1 - p
}

// ConfidenceNoFactoring computes the exact confidence by memoized Shannon
// expansion on the whole clause set, without the independent-component
// factoring. It is the ablation baseline for the factoring optimization;
// results are identical, only cost differs.
func ConfidenceNoFactoring(f F, t *vars.Table) float64 {
	f = f.Dedup()
	if len(f) == 0 {
		return 0
	}
	if len(f[0]) == 0 {
		return 1
	}
	return shannon(f, t, make(map[string]float64))
}

// components partitions the clause set into connected components under the
// "shares a variable" relation, via union-find over clause indices.
func components(f F) []F {
	parent := make([]int, len(f))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int) { parent[find(i)] = find(j) }

	owner := make(map[vars.Var]int)
	for i, a := range f {
		for _, b := range a {
			if j, ok := owner[b.Var]; ok {
				union(i, j)
			} else {
				owner[b.Var] = i
			}
		}
	}
	groups := make(map[int]F)
	for i, a := range f {
		r := find(i)
		groups[r] = append(groups[r], a)
	}
	// Deterministic order for reproducibility.
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]F, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// shannon computes the probability of the disjunction by expanding on the
// most frequent variable: p(F) = Σ_alt Pr[X=alt] · p(F | X=alt). Results
// are memoized on a canonical key of the residual clause set.
func shannon(f F, t *vars.Table, memo map[string]float64) float64 {
	// Normal form: drop duplicates; detect certainty.
	f = f.Dedup()
	if len(f) == 0 {
		return 0
	}
	if len(f[0]) == 0 {
		return 1
	}
	key := fKey(f)
	if p, ok := memo[key]; ok {
		return p
	}
	x := pickVar(f)
	p := 0.0
	for alt := 0; alt < t.DomSize(x); alt++ {
		cond := condition(f, x, int32(alt))
		p += t.Prob(x, alt) * shannon(cond, t, memo)
	}
	memo[key] = p
	return p
}

// pickVar chooses the variable occurring in the most clauses, which keeps
// the residual clause sets small.
func pickVar(f F) vars.Var {
	count := make(map[vars.Var]int)
	for _, a := range f {
		for _, b := range a {
			count[b.Var]++
		}
	}
	best := vars.Var(-1)
	bestN := -1
	for v, n := range count {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// condition returns F | X=alt: clauses conflicting with the binding are
// dropped; the binding is removed from the rest.
func condition(f F, x vars.Var, alt int32) F {
	out := make(F, 0, len(f))
	for _, a := range f {
		if got, ok := a.Get(x); ok {
			if got != alt {
				continue
			}
			out = append(out, a.Without(x))
		} else {
			out = append(out, a)
		}
	}
	return out
}

// fKey builds a canonical memoization key: sorted clause keys.
func fKey(f F) string {
	keys := make([]string, len(f))
	for i, a := range f {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// ConfidenceByEnumeration computes the confidence by enumerating every
// world of the table and summing the weights of worlds extending some
// clause. Exponential in the number of variables; used for cross-checks.
func ConfidenceByEnumeration(f F, t *vars.Table) float64 {
	f = f.Dedup()
	if len(f) == 0 {
		return 0
	}
	p := 0.0
	vars.EnumWorlds(t, 1<<22, func(w vars.World, weight float64) {
		for _, a := range f {
			if w.Satisfies(a) {
				p += weight
				return
			}
		}
	})
	return p
}

// ConfidenceByInclusionExclusion computes the confidence via
// inclusion–exclusion over clause subsets: Σ_∅≠S⊆F (−1)^{|S|+1} p_{∧S}.
// Exponential in |F|; used for cross-checks on small clause sets.
func ConfidenceByInclusionExclusion(f F, t *vars.Table) float64 {
	f = f.Dedup()
	n := len(f)
	if n == 0 {
		return 0
	}
	if n > 24 {
		panic("dnf: inclusion-exclusion on too many clauses")
	}
	p := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		inter := vars.Assignment{}
		ok := true
		bits := 0
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			inter, ok = inter.Union(f[i])
		}
		if !ok {
			continue // conflicting conjunction has probability 0
		}
		w := inter.Weight(t)
		if bits%2 == 1 {
			p += w
		} else {
			p -= w
		}
	}
	return p
}
