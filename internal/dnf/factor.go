package dnf

import (
	"repro/internal/vars"
)

// Lineage factoring pre-pass for approximate confidence.
//
// components() already proves that clauses in different connected
// components (under the shares-a-variable relation) are independent, so
// p = 1 − Π(1−p_c). The exact solver exploits that to shrink Shannon
// expansions; Factor exploits it to shrink *sampling*: components that
// are cheap to compute exactly — single clauses (read-once by
// construction) and small components — are folded into one exact
// probability, and only the genuinely hard residue is handed to the
// Karp–Luby estimator.
//
// Correctness of the split: with E the exact part's probability and p_R
// the residue's, p = 1 − (1−E)(1−p_R) = E + (1−E)·p_R. An estimate
// p̂_R with |p̂_R − p_R| ≤ ε·p_R yields
//
//	|p̂ − p| = (1−E)·|p̂_R − p_R| ≤ (1−E)·ε·p_R ≤ ε·p,
//
// since p ≥ (1−E)·p_R — the relative (ε,δ) guarantee on the residue
// carries to the combined estimate unchanged (and likewise for additive
// widths, which can only shrink by the factor 1−E).

// FactorLimits bounds the exact side of Factor: a component is computed
// exactly when it is a single clause, or when it has at most MaxClauses
// clauses and mentions at most MaxVars variables (keeping the Shannon
// expansion trivially cheap). Larger components join the residue.
type FactorLimits struct {
	MaxClauses int
	MaxVars    int
}

// DefaultFactorLimits is the engine's factoring policy: exact Shannon
// expansion is at worst ~2^MaxVars work per component, negligible next to
// a single sampling chunk.
var DefaultFactorLimits = FactorLimits{MaxClauses: 8, MaxVars: 16}

// Factored is the result of the factoring pre-pass.
type Factored struct {
	// Exact is the probability that at least one exactly-computed
	// component fires: 1 − Π(1−p_c) over the easy components.
	Exact float64
	// ExactComponents counts the components folded into Exact.
	ExactComponents int
	// Residue is the concatenation of the hard components (in the
	// deterministic component order), empty when everything was easy. Its
	// confidence p_R combines with Exact as p = Exact + (1−Exact)·p_R.
	Residue F
}

// Factor splits f into an exactly-computed part and a sampling residue.
// f should already be deduplicated; empty and tautological clause sets
// are handled as exact values. Because components() orders components
// deterministically, the residue's clause order — and hence everything
// derived from it downstream (canonical fingerprints, stratification
// plans, PRNG streams) — is a pure function of the input clause set.
func Factor(f F, t *vars.Table, lim FactorLimits) Factored {
	if len(f) == 0 {
		return Factored{}
	}
	if len(f[0]) == 0 {
		return Factored{Exact: 1, ExactComponents: 1}
	}
	comps := components(f)
	if len(comps) == 1 && !easyComponent(comps[0], lim) {
		// Fast path: one hard component — the residue is f itself.
		return Factored{Residue: f}
	}
	missAll := 1.0 // Π(1−p_c) over easy components
	out := Factored{}
	for _, comp := range comps {
		if !easyComponent(comp, lim) {
			out.Residue = append(out.Residue, comp...)
			continue
		}
		var pc float64
		if len(comp) == 1 {
			pc = comp[0].Weight(t)
		} else {
			pc = shannon(comp, t, make(map[string]float64))
		}
		missAll *= 1 - pc
		out.ExactComponents++
	}
	out.Exact = 1 - missAll
	return out
}

// easyComponent reports whether a connected component is cheap enough for
// exact computation under the limits.
func easyComponent(comp F, lim FactorLimits) bool {
	if len(comp) == 1 {
		return true
	}
	if len(comp) > lim.MaxClauses {
		return false
	}
	return len(comp.Vars()) <= lim.MaxVars
}
