package dnf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vars"
)

// Factoring changes cost, never results.
func TestFactoringAblationSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		tab := newTable(rng, 2+rng.Intn(6))
		f := randomF(rng, tab, 6, 3)
		a := Confidence(f, tab)
		b := ConfidenceNoFactoring(f, tab)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: factored %v vs unfactored %v", trial, a, b)
		}
	}
}

// independentInstance builds k disjoint single-variable clauses — the
// best case for component factoring.
func independentInstance(k int) (F, *vars.Table) {
	tab := vars.NewTable()
	f := make(F, 0, k)
	for i := 0; i < k; i++ {
		v := tab.Add(varName(i), []float64{0.5, 0.5}, nil)
		f = append(f, vars.MustAssignment(vars.Binding{Var: v, Alt: 0}))
	}
	return f, tab
}

func TestFactoringIndependentClauses(t *testing.T) {
	f, tab := independentInstance(20)
	// 1 − (1/2)^20 — factoring handles this instantly; unfactored Shannon
	// expansion would visit an exponential number of residual sets
	// without memo hits, so only the factored version is exercised at
	// this size.
	want := 1 - math.Pow(0.5, 20)
	if got := Confidence(f, tab); math.Abs(got-want) > 1e-12 {
		t.Errorf("Confidence = %v, want %v", got, want)
	}
}

func BenchmarkConfidenceFactoring(b *testing.B) {
	f, tab := independentInstance(14)
	b.Run("factored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Confidence(f, tab)
		}
	})
	b.Run("unfactored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ConfidenceNoFactoring(f, tab)
		}
	})
}
