// Package vars implements the probability substrate of U-relational
// databases (Section 3 of the paper): a finite set of independent discrete
// random variables with finite domains, represented by the table
// W(Var, Dom, P), and partial functions f : Var → Dom ("assignments") that
// annotate U-relation tuples.
//
// The weight of a partial function f is p_f = Π_X Pr[X = f(X)] (Eq. 2 of
// the paper), and two partial functions are consistent when they agree on
// the variables both define.
package vars

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rel"
)

// Var identifies a random variable in a Table.
type Var int32

// Info describes one random variable: a display name and the probability
// of each domain alternative. Alternatives are indexed 0..len(Probs)-1;
// alternative display names are optional.
type Info struct {
	Name     string
	Probs    []float64
	AltNames []string
}

// Table is the W relation: the registry of independent random variables.
// The zero value is an empty table ready for use.
type Table struct {
	infos  []Info
	byName map[string]Var
}

// NewTable returns an empty variable table.
func NewTable() *Table { return &Table{byName: make(map[string]Var)} }

// Add registers a new variable with the given alternative probabilities.
// Probabilities must be positive and sum to 1 (within a small tolerance,
// after which they are renormalized exactly). Add panics on invalid input
// or duplicate names: variable creation is driven by repair-key, which
// validates weights first, so failures here are programming errors.
func (t *Table) Add(name string, probs []float64, altNames []string) Var {
	if t.byName == nil {
		t.byName = make(map[string]Var)
	}
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("vars: duplicate variable %q", name))
	}
	if len(probs) == 0 {
		panic(fmt.Sprintf("vars: variable %q has empty domain", name))
	}
	sum := 0.0
	for _, p := range probs {
		if p <= 0 {
			panic(fmt.Sprintf("vars: variable %q has non-positive alternative probability %v", name, p))
		}
		sum += p
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		panic(fmt.Sprintf("vars: variable %q probabilities sum to %v, want 1", name, sum))
	}
	norm := make([]float64, len(probs))
	for i, p := range probs {
		norm[i] = p / sum
	}
	if altNames != nil && len(altNames) != len(probs) {
		panic(fmt.Sprintf("vars: variable %q has %d alt names for %d alternatives", name, len(altNames), len(probs)))
	}
	v := Var(len(t.infos))
	t.infos = append(t.infos, Info{Name: name, Probs: norm, AltNames: altNames})
	t.byName[name] = v
	return v
}

// RestoreTable rebuilds a table from variable descriptors received over a
// trusted channel (the cluster wire protocol). Unlike Add it performs no
// validation and — critically — no renormalization: the probabilities are
// installed bit-for-bit as shipped, so a shard-side estimator consumes
// exactly the same float64 stream as the coordinator's and chunk counts
// stay bit-identical across the network. The infos slice is retained.
func RestoreTable(infos []Info) *Table {
	t := &Table{infos: infos, byName: make(map[string]Var, len(infos))}
	for i, in := range infos {
		t.byName[in.Name] = Var(i)
	}
	return t
}

// Len returns the number of registered variables.
func (t *Table) Len() int { return len(t.infos) }

// Info returns the descriptor of variable v.
func (t *Table) Info(v Var) Info { return t.infos[v] }

// Prob returns Pr[v = alt].
func (t *Table) Prob(v Var, alt int) float64 { return t.infos[v].Probs[alt] }

// DomSize returns |Dom_v|.
func (t *Table) DomSize(v Var) int { return len(t.infos[v].Probs) }

// Lookup finds a variable by name.
func (t *Table) Lookup(name string) (Var, bool) {
	v, ok := t.byName[name]
	return v, ok
}

// AltName returns the display name of alternative alt of v.
func (t *Table) AltName(v Var, alt int) string {
	in := t.infos[v]
	if in.AltNames != nil {
		return in.AltNames[alt]
	}
	return strconv.Itoa(alt)
}

// Clone returns a deep copy of the table. U-relational query evaluation
// clones the table before repair-key introduces new variables, so the
// input database is never mutated.
func (t *Table) Clone() *Table {
	out := NewTable()
	for _, in := range t.infos {
		probs := append([]float64(nil), in.Probs...)
		var alts []string
		if in.AltNames != nil {
			alts = append([]string(nil), in.AltNames...)
		}
		out.infos = append(out.infos, Info{Name: in.Name, Probs: probs, AltNames: alts})
	}
	for name, v := range t.byName {
		out.byName[name] = v
	}
	return out
}

// WorldCount returns the number of total assignments Π|Dom_X|, or -1 on
// overflow. Used by the possible-worlds expansion to guard against
// accidentally exponential tests.
func (t *Table) WorldCount() int64 {
	n := int64(1)
	for _, in := range t.infos {
		n *= int64(len(in.Probs))
		if n < 0 || n > 1<<40 {
			return -1
		}
	}
	return n
}

// String renders the table in the paper's W(Var, Dom, P) form.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("Var\tDom\tP\n")
	for i, in := range t.infos {
		for a, p := range in.Probs {
			fmt.Fprintf(&b, "%s\t%s\t%g\n", in.Name, t.AltName(Var(i), a), p)
		}
	}
	return b.String()
}

// Binding is one (variable, alternative) pair of an assignment.
type Binding struct {
	Var Var
	Alt int32
}

// Assignment is a partial function Var → Dom, stored as bindings sorted by
// variable. The empty assignment represents "all worlds" (weight 1); a
// classical complete relation is the special case where every tuple
// carries the empty assignment.
type Assignment []Binding

// NewAssignment builds an assignment from bindings, sorting them and
// rejecting conflicting duplicates (same variable, different alternative).
func NewAssignment(bs ...Binding) (Assignment, error) {
	a := append(Assignment(nil), bs...)
	sort.Slice(a, func(i, j int) bool { return a[i].Var < a[j].Var })
	out := a[:0]
	for i, b := range a {
		if i > 0 && a[i-1].Var == b.Var {
			if a[i-1].Alt != b.Alt {
				return nil, fmt.Errorf("vars: conflicting bindings for variable %d", b.Var)
			}
			continue
		}
		out = append(out, b)
	}
	return out, nil
}

// MustAssignment is NewAssignment for inputs known to be conflict-free.
func MustAssignment(bs ...Binding) Assignment {
	a, err := NewAssignment(bs...)
	if err != nil {
		panic(err)
	}
	return a
}

// Len returns the number of bound variables.
func (a Assignment) Len() int { return len(a) }

// Get returns the alternative bound for v and whether v is bound.
func (a Assignment) Get(v Var) (int32, bool) {
	i := sort.Search(len(a), func(i int) bool { return a[i].Var >= v })
	if i < len(a) && a[i].Var == v {
		return a[i].Alt, true
	}
	return 0, false
}

// Weight returns p_f = Π Pr[X = f(X)] (paper Eq. 2).
func (a Assignment) Weight(t *Table) float64 {
	w := 1.0
	for _, b := range a {
		w *= t.Prob(b.Var, int(b.Alt))
	}
	return w
}

// ConsistentWith reports whether two partial functions agree on the
// variables both define (the paper's consistency relation).
func (a Assignment) ConsistentWith(b Assignment) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			i++
		case a[i].Var > b[j].Var:
			j++
		default:
			if a[i].Alt != b[j].Alt {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Union merges two consistent assignments; ok is false when they
// conflict. Union implements the D-column concatenation of the product
// translation [[R × S]].
func (a Assignment) Union(b Assignment) (Assignment, bool) {
	out := make(Assignment, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			out = append(out, a[i])
			i++
		case a[i].Var > b[j].Var:
			out = append(out, b[j])
			j++
		default:
			if a[i].Alt != b[j].Alt {
				return nil, false
			}
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, true
}

// Without returns the assignment with variable v removed.
func (a Assignment) Without(v Var) Assignment {
	out := make(Assignment, 0, len(a))
	for _, b := range a {
		if b.Var != v {
			out = append(out, b)
		}
	}
	return out
}

// With returns the assignment extended/overwritten with v = alt.
func (a Assignment) With(v Var, alt int32) Assignment {
	out := a.Without(v)
	out = append(out, Binding{Var: v, Alt: alt})
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// Vars appends the variables bound by a to dst.
func (a Assignment) Vars(dst []Var) []Var {
	for _, b := range a {
		dst = append(dst, b.Var)
	}
	return dst
}

// Hash returns a 64-bit hash of the assignment, consistent with Equal:
// equal binding lists hash identically. Hot-path grouping and dedup key on
// it instead of the allocating Key() string. It folds bindings with the
// same combination primitive as the tuple hashes (rel.HashCombine), so
// composite pair hashes mix one hash family.
func (a Assignment) Hash() uint64 {
	h := rel.HashSeed
	for _, b := range a {
		h = rel.HashCombine(h, uint64(uint32(b.Var))<<32|uint64(uint32(b.Alt)))
	}
	return h
}

// Equal reports whether two assignments bind the same variables to the
// same alternatives (both are sorted by variable, so this is positional).
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding for use as a map key.
func (a Assignment) Key() string {
	var b strings.Builder
	for i, bind := range a {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(bind.Var)))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(int(bind.Alt)))
	}
	return b.String()
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// String renders the assignment like {x=1, y=0} using variable names from
// t (or raw ids when t is nil).
func (a Assignment) Format(t *Table) string {
	if len(a) == 0 {
		return "{}"
	}
	parts := make([]string, len(a))
	for i, b := range a {
		if t != nil {
			parts[i] = fmt.Sprintf("%s=%s", t.Info(b.Var).Name, t.AltName(b.Var, int(b.Alt)))
		} else {
			parts[i] = fmt.Sprintf("v%d=%d", b.Var, b.Alt)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// World is a total assignment f* : Var → Dom, represented densely: entry i
// is the alternative chosen for variable i.
type World []int32

// Weight returns p_{f*}, the product of alternative probabilities over all
// variables in the table.
func (w World) Weight(t *Table) float64 {
	p := 1.0
	for v, alt := range w {
		p *= t.Prob(Var(v), int(alt))
	}
	return p
}

// Satisfies reports whether the world extends (is consistent with) the
// partial assignment: f* ∈ ω(f).
func (w World) Satisfies(a Assignment) bool {
	for _, b := range a {
		if int(b.Var) >= len(w) || w[b.Var] != b.Alt {
			return false
		}
	}
	return true
}

// EnumWorlds calls fn for every total assignment over the variables of t,
// with its weight. It panics when the world count exceeds limit (guarding
// tests against accidental exponential blowups); limit <= 0 means no
// check.
func EnumWorlds(t *Table, limit int64, fn func(w World, weight float64)) {
	if limit > 0 {
		if n := t.WorldCount(); n < 0 || n > limit {
			panic(fmt.Sprintf("vars: world count %d exceeds limit %d", n, limit))
		}
	}
	w := make(World, t.Len())
	var rec func(i int, weight float64)
	rec = func(i int, weight float64) {
		if i == t.Len() {
			fn(w, weight)
			return
		}
		for alt, p := range t.infos[i].Probs {
			w[i] = int32(alt)
			rec(i+1, weight*p)
		}
	}
	rec(0, 1.0)
}
