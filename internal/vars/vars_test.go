package vars

import (
	"math"
	"math/rand"
	"testing"
)

func mustAdd(t *testing.T, tab *Table, name string, probs ...float64) Var {
	t.Helper()
	return tab.Add(name, probs, nil)
}

func TestTableAddAndLookup(t *testing.T) {
	tab := NewTable()
	x := mustAdd(t, tab, "x", 0.5, 0.5)
	y := mustAdd(t, tab, "y", 0.2, 0.3, 0.5)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if got, ok := tab.Lookup("x"); !ok || got != x {
		t.Error("Lookup x failed")
	}
	if tab.DomSize(y) != 3 {
		t.Error("DomSize wrong")
	}
	if tab.Prob(y, 2) != 0.5 {
		t.Error("Prob wrong")
	}
	if tab.WorldCount() != 6 {
		t.Errorf("WorldCount = %d", tab.WorldCount())
	}
}

func TestTableAddValidation(t *testing.T) {
	for name, fn := range map[string]func(*Table){
		"duplicate": func(tab *Table) {
			tab.Add("x", []float64{1}, nil)
			tab.Add("x", []float64{1}, nil)
		},
		"empty":       func(tab *Table) { tab.Add("x", nil, nil) },
		"zero prob":   func(tab *Table) { tab.Add("x", []float64{0, 1}, nil) },
		"neg prob":    func(tab *Table) { tab.Add("x", []float64{-0.5, 1.5}, nil) },
		"bad sum":     func(tab *Table) { tab.Add("x", []float64{0.5, 0.4}, nil) },
		"altname len": func(tab *Table) { tab.Add("x", []float64{0.5, 0.5}, []string{"a"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(NewTable())
		}()
	}
}

func TestAssignmentBasics(t *testing.T) {
	a := MustAssignment(Binding{Var: 2, Alt: 1}, Binding{Var: 0, Alt: 0})
	if a.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if alt, ok := a.Get(2); !ok || alt != 1 {
		t.Error("Get(2) wrong")
	}
	if _, ok := a.Get(1); ok {
		t.Error("Get(1) should be unbound")
	}
	// Sorted order.
	if a[0].Var != 0 || a[1].Var != 2 {
		t.Error("not sorted")
	}
	if _, err := NewAssignment(Binding{Var: 1, Alt: 0}, Binding{Var: 1, Alt: 1}); err == nil {
		t.Error("conflicting duplicate accepted")
	}
	if dup, err := NewAssignment(Binding{Var: 1, Alt: 0}, Binding{Var: 1, Alt: 0}); err != nil || dup.Len() != 1 {
		t.Error("agreeing duplicate should collapse")
	}
}

func TestConsistencyAndUnion(t *testing.T) {
	a := MustAssignment(Binding{0, 0}, Binding{1, 1})
	b := MustAssignment(Binding{1, 1}, Binding{2, 0})
	c := MustAssignment(Binding{1, 0})
	if !a.ConsistentWith(b) || !b.ConsistentWith(a) {
		t.Error("a,b should be consistent")
	}
	if a.ConsistentWith(c) {
		t.Error("a,c conflict on var 1")
	}
	u, ok := a.Union(b)
	if !ok || u.Len() != 3 {
		t.Fatalf("Union = %v ok=%v", u, ok)
	}
	if _, ok := a.Union(c); ok {
		t.Error("conflicting union should fail")
	}
	// Empty assignment is consistent with everything.
	var empty Assignment
	if !empty.ConsistentWith(a) || !a.ConsistentWith(empty) {
		t.Error("empty must be universally consistent")
	}
}

func TestAssignmentWeight(t *testing.T) {
	tab := NewTable()
	mustAdd(t, tab, "x", 0.5, 0.5)
	mustAdd(t, tab, "y", 0.2, 0.8)
	a := MustAssignment(Binding{0, 0}, Binding{1, 1})
	if w := a.Weight(tab); math.Abs(w-0.4) > 1e-12 {
		t.Errorf("Weight = %v, want 0.4", w)
	}
	var empty Assignment
	if empty.Weight(tab) != 1 {
		t.Error("empty assignment weight must be 1")
	}
}

func TestWithWithout(t *testing.T) {
	a := MustAssignment(Binding{0, 0}, Binding{2, 1})
	b := a.Without(0)
	if b.Len() != 1 || b[0].Var != 2 {
		t.Errorf("Without = %v", b)
	}
	c := a.With(1, 3)
	if c.Len() != 3 {
		t.Errorf("With = %v", c)
	}
	if alt, ok := c.Get(1); !ok || alt != 3 {
		t.Error("With binding missing")
	}
	d := a.With(0, 5) // overwrite
	if alt, _ := d.Get(0); alt != 5 {
		t.Error("With should overwrite")
	}
	// Original untouched.
	if alt, _ := a.Get(0); alt != 0 {
		t.Error("With mutated receiver")
	}
}

func TestKeyCanonical(t *testing.T) {
	a := MustAssignment(Binding{3, 1}, Binding{1, 0})
	b := MustAssignment(Binding{1, 0}, Binding{3, 1})
	if a.Key() != b.Key() {
		t.Error("keys of equal assignments differ")
	}
	c := MustAssignment(Binding{1, 1}, Binding{3, 1})
	if a.Key() == c.Key() {
		t.Error("keys of different assignments collide")
	}
}

func TestEnumWorldsWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tab := NewTable()
		nv := 1 + rng.Intn(4)
		for i := 0; i < nv; i++ {
			k := 2 + rng.Intn(3)
			probs := make([]float64, k)
			sum := 0.0
			for j := range probs {
				probs[j] = rng.Float64() + 0.01
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
			}
			tab.Add(varName(i), probs, nil)
		}
		total := 0.0
		count := int64(0)
		EnumWorlds(tab, 1<<20, func(w World, weight float64) {
			total += weight
			count++
			if math.Abs(weight-w.Weight(tab)) > 1e-12 {
				t.Fatal("EnumWorlds weight disagrees with World.Weight")
			}
		})
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("world weights sum to %v", total)
		}
		if count != tab.WorldCount() {
			t.Fatalf("count %d != WorldCount %d", count, tab.WorldCount())
		}
	}
}

func varName(i int) string { return string(rune('a' + i)) }

func TestWorldSatisfies(t *testing.T) {
	w := World{0, 1, 2}
	if !w.Satisfies(MustAssignment(Binding{1, 1})) {
		t.Error("should satisfy")
	}
	if w.Satisfies(MustAssignment(Binding{1, 0})) {
		t.Error("should not satisfy")
	}
	if w.Satisfies(MustAssignment(Binding{9, 0})) {
		t.Error("out-of-range var should not satisfy")
	}
	var empty Assignment
	if !w.Satisfies(empty) {
		t.Error("every world satisfies the empty assignment")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := NewTable()
	mustAdd(t, tab, "x", 0.5, 0.5)
	cl := tab.Clone()
	cl.Add("y", []float64{1}, nil)
	if tab.Len() != 1 || cl.Len() != 2 {
		t.Error("clone not independent")
	}
	if _, ok := tab.Lookup("y"); ok {
		t.Error("clone name map leaked into original")
	}
}

// Property: for random assignments a, b over disjoint variables, Union
// weight equals product of weights.
func TestUnionWeightProduct(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 6; i++ {
		tab.Add(varName(i), []float64{0.3, 0.7}, nil)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var abs, bbs []Binding
		for v := 0; v < 6; v++ {
			switch rng.Intn(3) {
			case 0:
				abs = append(abs, Binding{Var(v), int32(rng.Intn(2))})
			case 1:
				bbs = append(bbs, Binding{Var(v), int32(rng.Intn(2))})
			}
		}
		a, b := MustAssignment(abs...), MustAssignment(bbs...)
		u, ok := a.Union(b)
		if !ok {
			t.Fatal("disjoint union must succeed")
		}
		if math.Abs(u.Weight(tab)-a.Weight(tab)*b.Weight(tab)) > 1e-12 {
			t.Fatal("union weight != product for disjoint assignments")
		}
	}
}
