package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of attribute names. Attribute names are
// case-sensitive and must be unique within a schema.
type Schema []string

// NewSchema builds a schema and panics on duplicate attribute names;
// schemas are almost always compile-time constants in callers, so a panic
// is the appropriate failure mode.
func NewSchema(attrs ...string) Schema {
	s := Schema(attrs)
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			panic(fmt.Sprintf("rel: duplicate attribute %q in schema", a))
		}
		seen[a] = true
	}
	return s
}

// Index returns the position of attribute a, or -1 if absent.
func (s Schema) Index(a string) int {
	for i, name := range s {
		if name == a {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains attribute a.
func (s Schema) Has(a string) bool { return s.Index(a) >= 0 }

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(t Schema) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema { return append(Schema(nil), s...) }

// Common returns the attribute names present in both schemas, in s-order.
// It is used by natural join.
func (s Schema) Common(t Schema) []string {
	var out []string
	for _, a := range s {
		if t.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Tuple is an ordered list of values positionally matching a Schema.
type Tuple []Value

// Key returns a canonical encoding of the tuple usable as a map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		k := v.Key()
		// Escape the separator so keys stay injective for string values
		// that contain '|'.
		if strings.ContainsAny(k, "|\\") {
			k = strings.ReplaceAll(k, `\`, `\\`)
			k = strings.ReplaceAll(k, "|", `\|`)
		}
		b.WriteString(k)
	}
	return b.String()
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports whether two tuples are value-equal position by position.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple for display.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Compare orders tuples lexicographically; shorter tuples sort first on
// ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// Relation is a set-semantics relation: a schema plus a set of tuples.
// Insertion order is preserved for display, but duplicates (under value
// equality) are collapsed.
//
// The dedup index is keyed by 64-bit tuple hashes with chained collision
// lists (index holds the most recent position per hash, next links earlier
// ones), so membership tests allocate nothing: candidates filtered by hash
// are confirmed by value equality, which is deterministic, so the set
// semantics are exactly those of the canonical Key() strings.
type Relation struct {
	schema Schema
	tuples []Tuple
	index  map[uint64]int32 // tuple hash -> most recent position with it
	next   []int32          // position -> previous position with same hash, -1 ends
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(schema Schema) *Relation {
	return &Relation{schema: schema.Clone(), index: make(map[uint64]int32)}
}

// FromRows builds a relation from a schema and rows; duplicates collapse.
func FromRows(schema Schema, rows ...Tuple) *Relation {
	r := NewRelation(schema)
	for _, t := range rows {
		r.Add(t)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of distinct tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the relation's tuples in insertion order. The returned
// slice must not be modified.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// find returns the position of the stored tuple equal to t under hash h,
// or -1.
func (r *Relation) find(h uint64, t Tuple) int32 {
	head, ok := r.index[h]
	if !ok {
		return -1
	}
	for i := head; i >= 0; i = r.next[i] {
		if r.tuples[i].Equal(t) {
			return i
		}
	}
	return -1
}

// Add inserts a tuple (set semantics). It reports whether the tuple was
// new. It panics when the tuple arity does not match the schema, which is
// always a programming error.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("rel: tuple arity %d does not match schema %v", len(t), r.schema))
	}
	return r.addHashed(t.Hash(), t, true)
}

// addHashed inserts t under its precomputed hash, cloning only when the
// caller retains ownership. The duplicate probe and the chain link share
// one index lookup.
func (r *Relation) addHashed(h uint64, t Tuple, clone bool) bool {
	head, chained := r.index[h]
	if chained {
		for j := head; j >= 0; j = r.next[j] {
			if r.tuples[j].Equal(t) {
				return false
			}
		}
	}
	pos := int32(len(r.tuples))
	if chained {
		r.next = append(r.next, head)
	} else {
		r.next = append(r.next, -1)
	}
	r.index[h] = pos
	if clone {
		t = t.Clone()
	}
	r.tuples = append(r.tuples, t)
	return true
}

// AddOwned inserts a tuple the caller relinquishes ownership of: no
// defensive clone is taken. Operators that construct fresh rows use it to
// avoid one allocation per emitted tuple.
func (r *Relation) AddOwned(t Tuple) bool {
	if len(t) != len(r.schema) {
		panic(fmt.Sprintf("rel: tuple arity %d does not match schema %v", len(t), r.schema))
	}
	return r.addHashed(t.Hash(), t, false)
}

// Contains reports whether the relation contains the tuple.
func (r *Relation) Contains(t Tuple) bool {
	return r.find(t.Hash(), t) >= 0
}

// Lookup returns the stored tuple equal to t, if any. This matters when
// callers need the canonical instance (e.g. for attached metadata keyed by
// position).
func (r *Relation) Lookup(t Tuple) (Tuple, bool) {
	i := r.find(t.Hash(), t)
	if i < 0 {
		return nil, false
	}
	return r.tuples[i], true
}

// Value returns the value of attribute a in tuple t under this relation's
// schema. It panics if the attribute does not exist.
func (r *Relation) Value(t Tuple, a string) Value {
	i := r.schema.Index(a)
	if i < 0 {
		panic(fmt.Sprintf("rel: attribute %q not in schema %v", a, r.schema))
	}
	return t[i]
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.schema)
	for _, t := range r.tuples {
		out.Add(t)
	}
	return out
}

// Equal reports whether two relations have equal schemas and equal tuple
// sets (order-insensitive).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !o.Contains(t) {
			return false
		}
	}
	return true
}

// Sorted returns the tuples in canonical (lexicographic) order; used for
// stable display and golden tests.
func (r *Relation) Sorted() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// String renders the relation as a small text table.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.schema, "\t"))
	b.WriteByte('\n')
	for _, t := range r.Sorted() {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Project returns the relation restricted to the named attributes
// (deduplicating under set semantics).
func (r *Relation) Project(attrs ...string) *Relation {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.schema.Index(a)
		if j < 0 {
			panic(fmt.Sprintf("rel: project on missing attribute %q", a))
		}
		idx[i] = j
	}
	out := NewRelation(NewSchema(attrs...))
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		out.AddOwned(nt)
	}
	return out
}
