package rel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), NullKind},
		{Bool(true), BoolKind},
		{Int(3), IntKind},
		{Float(2.5), FloatKind},
		{String("x"), StringKind},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueCompareNumericPromotion(t *testing.T) {
	if !Equal(Int(2), Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Error("Int(1) < Float(1.5) expected")
	}
	if Compare(Float(3), Int(2)) != 1 {
		t.Error("Float(3) > Int(2) expected")
	}
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("equal numerics must share a key")
	}
}

func TestValueCompareCrossKinds(t *testing.T) {
	// null < bool < numeric < string
	order := []Value{Null(), Bool(false), Bool(true), Int(-5), Float(0), String("")}
	for i := 0; i < len(order); i++ {
		for j := 0; j < len(order); j++ {
			got := Compare(order[i], order[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			// Int(-5) vs Float(0) is a real numeric comparison, included
			// in the intended order above.
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", order[i], order[j], got, want)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(Int(2), Int(3)); !Equal(got, Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Add(Int(2), Float(0.5)); !Equal(got, Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Sub(Float(1), Int(2)); !Equal(got, Float(-1)) {
		t.Errorf("1-2 = %v", got)
	}
	if got := Mul(Int(4), Int(5)); !Equal(got, Int(20)) {
		t.Errorf("4*5 = %v", got)
	}
	if got := Div(Int(1), Int(2)); !Equal(got, Float(0.5)) {
		t.Errorf("1/2 = %v", got)
	}
	if got := Div(Int(1), Int(0)); !got.IsNull() {
		t.Errorf("1/0 = %v, want NULL", got)
	}
	if got := Add(String("a"), Int(1)); !got.IsNull() {
		t.Errorf("string+int = %v, want NULL", got)
	}
}

func TestAsFloatNonNumericIsNaN(t *testing.T) {
	if !math.IsNaN(String("x").AsFloat()) {
		t.Error("AsFloat of string should be NaN")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"2.5", Float(2.5)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"hello", String("hello")},
		{"", Null()},
	}
	for _, c := range cases {
		got := Parse(c.in)
		if got.Kind() != c.want.Kind() || !Equal(got, c.want) {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must distinguish tuples that concatenate to the same text.
	a := Tuple{String("a|b"), String("c")}
	b := Tuple{String("a"), String("b|c")}
	if a.Key() == b.Key() {
		t.Error("tuple keys collide across separator boundary")
	}
	c := Tuple{String(`a\`), String("b")}
	d := Tuple{String("a"), String(`\b`)}
	if c.Key() == d.Key() {
		t.Error("tuple keys collide across escape boundary")
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{Int(1), String("b")}
	b := Tuple{Int(1), String("c")}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("tuple compare broken")
	}
	short := Tuple{Int(1)}
	if short.Compare(a) != -1 {
		t.Error("shorter tuple should sort first on tie")
	}
}

func TestRelationSetSemantics(t *testing.T) {
	r := NewRelation(NewSchema("A", "B"))
	if !r.Add(Tuple{Int(1), String("x")}) {
		t.Error("first add should be new")
	}
	if r.Add(Tuple{Int(1), String("x")}) {
		t.Error("duplicate add should collapse")
	}
	if r.Add(Tuple{Float(1), String("x")}) {
		t.Error("numeric-equal duplicate should collapse")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Contains(Tuple{Int(1), String("x")}) {
		t.Error("Contains failed")
	}
}

func TestRelationProjectAndValue(t *testing.T) {
	r := FromRows(NewSchema("A", "B", "C"),
		Tuple{Int(1), String("x"), Float(0.5)},
		Tuple{Int(1), String("y"), Float(0.5)},
	)
	p := r.Project("A", "C")
	if p.Len() != 1 {
		t.Errorf("project should dedup: len=%d", p.Len())
	}
	if v := r.Value(r.Tuples()[0], "B"); !Equal(v, String("x")) {
		t.Errorf("Value B = %v", v)
	}
}

func TestRelationEqual(t *testing.T) {
	a := FromRows(NewSchema("A"), Tuple{Int(1)}, Tuple{Int(2)})
	b := FromRows(NewSchema("A"), Tuple{Int(2)}, Tuple{Int(1)})
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	c := FromRows(NewSchema("A"), Tuple{Int(1)})
	if a.Equal(c) {
		t.Error("unequal relations reported equal")
	}
	d := FromRows(NewSchema("B"), Tuple{Int(1)}, Tuple{Int(2)})
	if a.Equal(d) {
		t.Error("schema mismatch must not be equal")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema("A", "B", "C")
	if s.Index("B") != 1 || s.Index("Z") != -1 {
		t.Error("Index broken")
	}
	if !s.Has("C") || s.Has("Z") {
		t.Error("Has broken")
	}
	tt := NewSchema("B", "D")
	common := s.Common(tt)
	if len(common) != 1 || common[0] != "B" {
		t.Errorf("Common = %v", common)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate schema should panic")
		}
	}()
	NewSchema("A", "A")
}

// Property: Compare is antisymmetric and consistent with Equal for
// arbitrary int/float/string values.
func TestCompareProperties(t *testing.T) {
	f := func(ai int64, af float64, as string, bi int64, bf float64, bs string, sel uint8) bool {
		mk := func(i int64, fl float64, s string, sel uint8) Value {
			switch sel % 3 {
			case 0:
				return Int(i)
			case 1:
				if math.IsNaN(fl) {
					fl = 0
				}
				return Float(fl)
			default:
				return String(s)
			}
		}
		a := mk(ai, af, as, sel)
		b := mk(bi, bf, bs, sel>>2)
		c1, c2 := Compare(a, b), Compare(b, a)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tuple Key is injective with respect to tuple equality.
func TestTupleKeyMatchesEquality(t *testing.T) {
	f := func(a1, b1 int64, a2, b2 string) bool {
		t1 := Tuple{Int(a1), String(a2)}
		t2 := Tuple{Int(b1), String(b2)}
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
