package rel

import (
	"math"
	"strings"
	"sync"
)

// 64-bit hashing of values and tuples. The hot relational operators (join
// build–probe, set-semantics dedup, lineage grouping) key their hash
// tables on these hashes instead of the canonical Key() strings: hashing
// never allocates, and the string forms are kept only for display and for
// stable external maps (provenance error bounds). Collisions are resolved
// by value equality (Compare), which is deterministic.
//
// The hash respects Compare-equality: values that are Equal hash
// identically — Int(1) and Float(1) collide because numerics hash their
// widened float64 bits, and ±0 and all NaN payloads are canonicalized
// first. This is one deliberate divergence from the legacy Key() strings,
// which rendered -0.0 ("f-0") and +0.0 ("f0") distinctly even though
// Compare (and hence Tuple.Equal) treats them as equal: hashed dedup
// collapses ±0 onto one tuple, making the index self-consistent with the
// package's equality relation.

const (
	hashOffset64 uint64 = 14695981039346656037 // FNV-1a offset basis
	hashPrime64  uint64 = 1099511628211        // FNV-1a prime
)

// HashSeed is the initial accumulator for the running hashes below.
const HashSeed uint64 = hashOffset64

// Mix64 is the SplitMix64 finalizer (Steele et al.): a cheap bijective
// 64-bit mixer used to spread word-sized inputs across the hash space.
// It is the one copy of the primitive — the scheduler's seed derivation
// (sched.TaskSeed/ChunkSeed) builds on it too.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashCombine folds a 64-bit word into a running hash. It is the one
// combination primitive shared by the value, tuple, and assignment hashes,
// so cross-package composites (e.g. urel's (D, row) pair hash) stay
// consistent.
func HashCombine(h, x uint64) uint64 {
	return (h ^ Mix64(x)) * hashPrime64
}

// hashString folds a string's bytes into a running hash (FNV-1a step).
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= hashPrime64
	}
	return h
}

// HashString is the exported form of the FNV-1a string fold, for composite
// hashes built outside this package (e.g. the engine's lineage-content
// fingerprints, which fold variable names and probabilities into one hash
// family with the value/tuple hashes).
func HashString(h uint64, s string) uint64 { return hashString(h, s) }

// Hash folds the value into a running hash without allocating. Values that
// are Equal (under Compare) hash identically; see the package comment on
// numeric widening.
func (v Value) Hash(h uint64) uint64 {
	switch v.kind {
	case NullKind:
		return HashCombine(h, 0)
	case BoolKind:
		x := uint64(2)
		if v.b {
			x = 3
		}
		return HashCombine(h, x)
	case IntKind, FloatKind:
		f := v.AsFloat()
		if f == 0 {
			f = 0 // collapse -0.0 onto +0.0: Compare treats them as equal
		}
		bits := math.Float64bits(f)
		if f != f {
			bits = 0x7ff8000000000001 // canonical NaN: payloads compare equal
		}
		return HashCombine(HashCombine(h, 4), bits)
	case StringKind:
		return hashString(HashCombine(h, 5), v.s)
	default:
		return HashCombine(h, uint64(v.kind))
	}
}

// Hash returns a 64-bit hash of the whole tuple, consistent with
// value-equality: t.Equal(u) implies t.Hash() == u.Hash().
func (t Tuple) Hash() uint64 {
	h := HashSeed
	for _, v := range t {
		h = v.Hash(h)
	}
	return h
}

// HashAt hashes the sub-tuple at the given positions — the allocation-free
// replacement for building a key string over join columns.
func (t Tuple) HashAt(idx []int) uint64 {
	h := HashSeed
	for _, j := range idx {
		h = t[j].Hash(h)
	}
	return h
}

// EqualAt reports whether two tuples agree (under value equality) on the
// given column positions of each.
func (t Tuple) EqualAt(tIdx []int, u Tuple, uIdx []int) bool {
	for i := range tIdx {
		if !Equal(t[tIdx[i]], u[uIdx[i]]) {
			return false
		}
	}
	return true
}

// Interner is a value-interning table: it canonicalizes string payloads so
// that repeated occurrences (CSV columns, categorical attributes) share
// one backing array instead of one allocation per row. Interned strings
// also make the common equal-strings comparison a pointer check inside the
// runtime. An Interner is safe for concurrent use.
type Interner struct {
	mu sync.Mutex
	m  map[string]string
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

// Intern returns the canonical instance of s. The first sighting is
// cloned, so the table never pins a caller's larger backing array (e.g. a
// whole CSV record) through a substring.
func (in *Interner) Intern(s string) string {
	in.mu.Lock()
	c, ok := in.m[s]
	if !ok {
		c = strings.Clone(s)
		in.m[c] = c
	}
	in.mu.Unlock()
	return c
}

// Len reports the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}

// Value interns v's payload when it is a string; other kinds pass through
// unchanged (they carry no heap payload worth sharing).
func (in *Interner) Value(v Value) Value {
	if v.kind == StringKind {
		v.s = in.Intern(v.s)
	}
	return v
}

// ParseInterned is Parse with string results canonicalized through the
// intern table.
func (in *Interner) ParseInterned(s string) Value {
	return in.Value(Parse(s))
}
