// Package rel provides the relational substrate used by every other layer:
// typed scalar values, tuples, schemas, and set-semantics relations.
//
// Values are a small tagged union over null, bool, int64, float64 and
// string. Arithmetic promotes int to float when the operands mix; equality
// and ordering compare numerics by value across the int/float divide, so a
// tuple ⟨1⟩ equals a tuple ⟨1.0⟩, matching the untyped-constant semantics
// used by the paper's examples.
package rel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds. NullKind is the zero value, so the zero Value is NULL.
const (
	NullKind Kind = iota
	BoolKind
	IntKind
	FloatKind
	StringKind
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case NullKind:
		return "null"
	case BoolKind:
		return "bool"
	case IntKind:
		return "int"
	case FloatKind:
		return "float"
	case StringKind:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar database value.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: BoolKind, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: IntKind, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: FloatKind, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: StringKind, s: s} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == NullKind }

// AsBool returns the boolean payload; it is false for non-bool values.
func (v Value) AsBool() bool { return v.kind == BoolKind && v.b }

// AsInt returns the value as int64, truncating floats. It returns 0 for
// non-numeric values.
func (v Value) AsInt() int64 {
	switch v.kind {
	case IntKind:
		return v.i
	case FloatKind:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the value as float64. It returns NaN for non-numeric
// values so that accidental arithmetic on strings is loud in tests.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case IntKind:
		return float64(v.i)
	case FloatKind:
		return v.f
	default:
		return math.NaN()
	}
}

// AsString returns the string payload, or the rendered form for other
// kinds.
func (v Value) AsString() string {
	if v.kind == StringKind {
		return v.s
	}
	return v.String()
}

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.kind == IntKind || v.kind == FloatKind }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case NullKind:
		return "NULL"
	case BoolKind:
		return strconv.FormatBool(v.b)
	case IntKind:
		return strconv.FormatInt(v.i, 10)
	case FloatKind:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringKind:
		return v.s
	default:
		return "?"
	}
}

// Key renders a canonical, injective encoding of the value, suitable for
// use as a map key. Numeric values that are equal under Compare produce
// the same key (ints are widened to float form when they are integral
// floats' equals).
func (v Value) Key() string {
	switch v.kind {
	case NullKind:
		return "n"
	case BoolKind:
		if v.b {
			return "b1"
		}
		return "b0"
	case IntKind:
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case FloatKind:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringKind:
		return "s" + v.s
	default:
		return "?"
	}
}

// Compare orders values. NULL sorts before everything; bools before
// numbers before strings. Ints and floats compare numerically with each
// other. It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := compareRank(a.kind), compareRank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch {
	case a.kind == NullKind:
		return 0
	case a.kind == BoolKind:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case a.IsNumeric():
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default:
		return strings.Compare(a.s, b.s)
	}
}

// compareRank groups kinds into comparison classes: null < bool < numeric
// < string.
func compareRank(k Kind) int {
	switch k {
	case NullKind:
		return 0
	case BoolKind:
		return 1
	case IntKind, FloatKind:
		return 2
	default:
		return 3
	}
}

// Equal reports whether two values are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns a+b with numeric promotion. Adding involving a non-numeric
// value yields NULL.
func Add(a, b Value) Value {
	return arith(a, b, func(x, y float64) float64 { return x + y }, func(x, y int64) int64 { return x + y })
}

// Sub returns a-b with numeric promotion.
func Sub(a, b Value) Value {
	return arith(a, b, func(x, y float64) float64 { return x - y }, func(x, y int64) int64 { return x - y })
}

// Mul returns a*b with numeric promotion.
func Mul(a, b Value) Value {
	return arith(a, b, func(x, y float64) float64 { return x * y }, func(x, y int64) int64 { return x * y })
}

// Div returns a/b. Division always produces a float; division by zero
// yields NULL (the paper's expressions never divide by zero on valid
// inputs, and NULL propagates harmlessly through predicates as false).
func Div(a, b Value) Value {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null()
	}
	d := b.AsFloat()
	if d == 0 {
		return Null()
	}
	return Float(a.AsFloat() / d)
}

// arith applies ff (float op) or fi (int op) depending on operand kinds.
func arith(a, b Value, ff func(float64, float64) float64, fi func(int64, int64) int64) Value {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null()
	}
	if a.kind == IntKind && b.kind == IntKind {
		return Int(fi(a.i, b.i))
	}
	return Float(ff(a.AsFloat(), b.AsFloat()))
}

// Parse converts a textual field (e.g. from CSV input) into a Value: int
// if it parses as an integer, float if it parses as a number, bool for
// true/false, otherwise a string. Empty text parses as NULL.
func Parse(s string) Value {
	if s == "" {
		return Null()
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f)
	}
	if s == "true" {
		return Bool(true)
	}
	if s == "false" {
		return Bool(false)
	}
	return String(s)
}
