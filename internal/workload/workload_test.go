package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dnf"
	"repro/internal/rel"
	"repro/internal/urel"
)

func TestTupleIndependent(t *testing.T) {
	db := TupleIndependent("R", []float64{0.3, 0.9})
	r := db.Rels["R"]
	if r.Len() != 2 || db.Vars.Len() != 2 {
		t.Fatalf("len=%d vars=%d", r.Len(), db.Vars.Len())
	}
	conf, err := urel.ConfExact(r, db.Vars, "P")
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range conf.Tuples() {
		id := conf.Value(tp, "ID").AsInt()
		p := conf.Value(tp, "P").AsFloat()
		want := 0.3
		if id == 1 {
			want = 0.9
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("conf(%d) = %v, want %v", id, p, want)
		}
	}
}

func TestRandomDNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := urel.NewDatabase()
	f := RandomDNF(rng, db.Vars, 5, 8, 3)
	if len(f) != 8 {
		t.Fatalf("clauses = %d, want 8", len(f))
	}
	if db.Vars.Len() != 5 {
		t.Fatalf("vars = %d, want 5", db.Vars.Len())
	}
	// Clauses are distinct and conflict-free by construction.
	if len(f.Dedup()) != 8 {
		t.Error("RandomDNF produced duplicates")
	}
	p := dnf.Confidence(f, db.Vars)
	if p <= 0 || p > 1 {
		t.Errorf("confidence out of range: %v", p)
	}
}

func TestMultiClause(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := MultiClause(rng, "R", 4, 3, 5, 2)
	lin := urel.Lineage(db.Rels["R"])
	if len(lin) != 4 {
		t.Fatalf("tuples = %d", len(lin))
	}
	for _, tc := range lin {
		if len(tc.F) < 2 {
			t.Errorf("tuple %v has %d clauses; want multi-clause", tc.Row, len(tc.F))
		}
	}
}

func TestCoinBagPosterior(t *testing.T) {
	// The paper's exact instance: 2 fair + 1 double-headed, 2 tosses →
	// posterior 1/3.
	bag := CoinBag{FairCount: 2, BiasedCount: 1, Bias: 1, Tosses: 2}
	if got := bag.PosteriorFairAllHeads(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("posterior = %v, want 1/3", got)
	}
	db := bag.Database()
	if db.Rels["Faces"].Len() != 3 {
		t.Errorf("Faces should have 3 rows for a double-headed coin, got %d", db.Rels["Faces"].Len())
	}
	// A biased-but-not-deterministic coin has 4 face rows.
	bag2 := CoinBag{FairCount: 1, BiasedCount: 1, Bias: 0.9, Tosses: 3}
	if bag2.Database().Rels["Faces"].Len() != 4 {
		t.Error("Faces should have 4 rows for bias < 1")
	}
	// Posterior sanity: more all-heads evidence lowers P(fair).
	p2 := CoinBag{FairCount: 1, BiasedCount: 1, Bias: 0.9, Tosses: 2}.PosteriorFairAllHeads()
	p5 := CoinBag{FairCount: 1, BiasedCount: 1, Bias: 0.9, Tosses: 5}.PosteriorFairAllHeads()
	if p5 >= p2 {
		t.Errorf("posterior should decrease with more heads: %v vs %v", p2, p5)
	}
}

func TestDirtyCustomers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := DirtyCustomers(rng, 5, 3)
	cand := db.Rels["Candidates"]
	if cand.Len() != 15 {
		t.Fatalf("candidates = %d", cand.Len())
	}
	if !db.Complete["Candidates"] {
		t.Error("Candidates must be complete")
	}
	for _, ut := range cand.Tuples() {
		w := ut.Row[2].AsFloat()
		if w <= 0 {
			t.Errorf("non-positive weight %v", w)
		}
	}
}

func TestSensorReadings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := SensorReadings(rng, 3, 4)
	r := db.Rels["Readings"]
	if r.Len() != 12 || db.Vars.Len() != 12 {
		t.Fatalf("readings=%d vars=%d", r.Len(), db.Vars.Len())
	}
	// All lineages are singleton (tuple-independent).
	for _, tc := range urel.Lineage(r) {
		if len(tc.F) != 1 {
			t.Error("sensor readings should be tuple-independent")
		}
	}
	_ = rel.NewSchema
}

func TestUniformProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := UniformProbs(rng, 100, 0.2, 0.4)
	for _, p := range ps {
		if p < 0.2 || p > 0.4 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}
