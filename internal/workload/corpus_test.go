package workload

import (
	"context"
	"os"
	"testing"

	"repro/internal/rel"
	"repro/internal/store"

	"repro/pdb"
)

// TestCorpusScenarios generates a small instance of every scenario and
// checks the files are valid pdbstore, the registry metadata matches what
// Generate produced, and the scenario query runs over the loaded corpus.
func TestCorpusScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			dir := t.TempDir()
			sources, err := sc.Generate(dir, 600, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(sources) != len(sc.Relations) {
				t.Fatalf("Generate produced %d relations, registry lists %d", len(sources), len(sc.Relations))
			}
			var total int
			for _, name := range sc.Relations {
				path, ok := sources[name]
				if !ok {
					t.Fatalf("registry relation %q missing from Generate output %v", name, sources)
				}
				if !store.Sniff(path) {
					t.Fatalf("%s is not a pdbstore file", path)
				}
				r, err := store.ReadRelation(path, rel.NewInterner())
				if err != nil {
					t.Fatal(err)
				}
				total += r.Len()
			}
			if total < 550 || total > 650 {
				t.Errorf("corpus totals %d tuples, want ~600", total)
			}

			db, err := pdb.Open(sources)
			if err != nil {
				t.Fatal(err)
			}
			q, err := db.Prepare(sc.Query)
			if err != nil {
				t.Fatalf("scenario query does not parse: %v", err)
			}
			res, err := q.EvalExact(context.Background(), pdb.WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() == 0 {
				t.Error("scenario query produced no rows")
			}
		})
	}
}

// TestCorpusDeterminism re-generates a scenario with the same (rows,
// seed) and requires byte-identical files; a different seed must change
// them.
func TestCorpusDeterminism(t *testing.T) {
	sc, err := ScenarioByName("entity-resolution")
	if err != nil {
		t.Fatal(err)
	}
	read := func(rows, seed int64) map[string][]byte {
		dir := t.TempDir()
		sources, err := sc.Generate(dir, 400, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][]byte{}
		for name, path := range sources {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			out[name] = b
		}
		return out
	}
	a, b, c := read(400, 3), read(400, 3), read(400, 4)
	for name := range a {
		if string(a[name]) != string(b[name]) {
			t.Errorf("%s: same seed produced different bytes", name)
		}
		if string(a[name]) == string(c[name]) {
			t.Errorf("%s: different seed produced identical bytes", name)
		}
	}
}

func TestScenarioByNameUnknown(t *testing.T) {
	if _, err := ScenarioByName("nope"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
}
