package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dnf"
	"repro/internal/rel"
	"repro/internal/urel"
	"repro/internal/vars"
)

// TupleIndependent builds a database with relation name(ID) of n tuples,
// tuple i present independently with probability probs[i].
func TupleIndependent(name string, probs []float64) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i, p := range probs {
		v := db.Vars.Add(fmt.Sprintf("%s_t%d", name, i), []float64{p, 1 - p}, []string{"in", "out"})
		r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{rel.Int(int64(i))})
	}
	db.AddURelation(name, r, false)
	return db
}

// UniformProbs returns n probabilities drawn uniformly from [lo, hi].
func UniformProbs(rng *rand.Rand, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float64()
	}
	return out
}

// RandomDNF registers nVars fresh binary variables in tab (probabilities
// uniform in [0.2, 0.8]) and returns a clause set of nClauses random
// conjunctions of up to maxLits literals over them. Conflicting random
// clauses are re-drawn, so the result has exactly nClauses clauses.
func RandomDNF(rng *rand.Rand, tab *vars.Table, nVars, nClauses, maxLits int) dnf.F {
	base := tab.Len()
	for i := 0; i < nVars; i++ {
		p := 0.2 + 0.6*rng.Float64()
		tab.Add(fmt.Sprintf("d%d_%d", base, i), []float64{p, 1 - p}, nil)
	}
	f := make(dnf.F, 0, nClauses)
	seen := map[string]bool{}
	for len(f) < nClauses {
		nl := 1 + rng.Intn(maxLits)
		var bs []vars.Binding
		for l := 0; l < nl; l++ {
			bs = append(bs, vars.Binding{
				Var: vars.Var(base + rng.Intn(nVars)),
				Alt: int32(rng.Intn(2)),
			})
		}
		a, err := vars.NewAssignment(bs...)
		if err != nil {
			continue
		}
		if k := a.Key(); !seen[k] {
			seen[k] = true
			f = append(f, a)
		}
	}
	return f
}

// MultiClause builds a database with relation name(ID) of n tuples, where
// tuple i's lineage is a random DNF of clauses clauses over nVars fresh
// variables — confidences require genuine Karp–Luby estimation (unlike the
// singleton lineages of TupleIndependent).
func MultiClause(rng *rand.Rand, name string, n, nVars, clauses, maxLits int) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("ID"))
	for i := 0; i < n; i++ {
		f := RandomDNF(rng, db.Vars, nVars, clauses, maxLits)
		for _, a := range f {
			r.Add(a, rel.Tuple{rel.Int(int64(i))})
		}
	}
	db.AddURelation(name, r, false)
	return db
}

// CoinBag is the generalized Example 2.2 instance: a bag with fairCount
// fair coins and biasedCount coins of the given head bias, and a number of
// observed tosses.
type CoinBag struct {
	FairCount, BiasedCount int
	Bias                   float64 // P(H) of the biased coin type
	Tosses                 int
}

// Database builds the complete relations Coins(CoinType, Count),
// Faces(CoinType, Face, FProb) and Tosses(Toss) for the bag.
func (c CoinBag) Database() *urel.Database {
	db := urel.NewDatabase()
	db.AddComplete("Coins", rel.FromRows(rel.NewSchema("CoinType", "Count"),
		rel.Tuple{rel.String("fair"), rel.Int(int64(c.FairCount))},
		rel.Tuple{rel.String("biased"), rel.Int(int64(c.BiasedCount))},
	))
	faces := rel.NewRelation(rel.NewSchema("CoinType", "Face", "FProb"))
	faces.Add(rel.Tuple{rel.String("fair"), rel.String("H"), rel.Float(0.5)})
	faces.Add(rel.Tuple{rel.String("fair"), rel.String("T"), rel.Float(0.5)})
	if c.Bias >= 1 {
		faces.Add(rel.Tuple{rel.String("biased"), rel.String("H"), rel.Float(1)})
	} else {
		faces.Add(rel.Tuple{rel.String("biased"), rel.String("H"), rel.Float(c.Bias)})
		faces.Add(rel.Tuple{rel.String("biased"), rel.String("T"), rel.Float(1 - c.Bias)})
	}
	db.AddComplete("Faces", faces)
	tosses := rel.NewRelation(rel.NewSchema("Toss"))
	for i := 1; i <= c.Tosses; i++ {
		tosses.Add(rel.Tuple{rel.Int(int64(i))})
	}
	db.AddComplete("Tosses", tosses)
	return db
}

// PosteriorFairAllHeads returns the analytic posterior probability that
// the drawn coin is fair given that all tosses came up heads — the ground
// truth for the generalized coin experiment.
func (c CoinBag) PosteriorFairAllHeads() float64 {
	total := float64(c.FairCount + c.BiasedCount)
	pFair := float64(c.FairCount) / total
	pBiased := float64(c.BiasedCount) / total
	likeFair := 1.0
	likeBiased := 1.0
	for i := 0; i < c.Tosses; i++ {
		likeFair *= 0.5
		likeBiased *= c.Bias
	}
	return pFair * likeFair / (pFair*likeFair + pBiased*likeBiased)
}

// DirtyCustomers builds the data-cleaning scenario the paper's
// introduction motivates: Candidates(Cluster, Name, Weight) holds
// alternative canonical records per duplicate cluster with match weights.
// repair-key_{Cluster}@Weight picks one record per cluster; confidence
// predicates then select clusters resolved with high certainty.
func DirtyCustomers(rng *rand.Rand, clusters, altsPerCluster int) *urel.Database {
	db := urel.NewDatabase()
	cand := rel.NewRelation(rel.NewSchema("Cluster", "Name", "Weight"))
	for c := 0; c < clusters; c++ {
		for a := 0; a < altsPerCluster; a++ {
			w := 0.1 + rng.Float64()
			if a == 0 && rng.Intn(2) == 0 {
				w += 2 // a dominant candidate: cleanly resolvable cluster
			}
			cand.Add(rel.Tuple{
				rel.Int(int64(c)),
				rel.String(fmt.Sprintf("name%d_%d", c, a)),
				rel.Float(w),
			})
		}
	}
	db.AddComplete("Candidates", cand)
	return db
}

// SensorReadings builds the sensor scenario: Readings(Sensor, Epoch,
// Value) where each reading is present with a per-reading confidence
// (sensor noise), as a tuple-independent U-relation.
func SensorReadings(rng *rand.Rand, sensors, epochs int) *urel.Database {
	db := urel.NewDatabase()
	r := urel.NewRelation(rel.NewSchema("Sensor", "Epoch", "Value"))
	for s := 0; s < sensors; s++ {
		reliability := 0.3 + 0.65*rng.Float64()
		for e := 0; e < epochs; e++ {
			p := reliability * (0.8 + 0.2*rng.Float64())
			v := db.Vars.Add(fmt.Sprintf("s%d_e%d", s, e), []float64{p, 1 - p}, []string{"ok", "drop"})
			r.Add(vars.MustAssignment(vars.Binding{Var: v, Alt: 0}), rel.Tuple{
				rel.Int(int64(s)),
				rel.Int(int64(e)),
				rel.Float(20 + 5*rng.NormFloat64()),
			})
		}
	}
	db.AddURelation("Readings", r, false)
	return db
}
