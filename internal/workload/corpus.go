package workload

import (
	"fmt"
	"math/rand"
	"path/filepath"

	"repro/internal/rel"
	"repro/internal/store"
)

// Scenario is one member of the generated benchmark corpus: a named data
// generator that streams pdbstore relations to disk plus a UA query (in
// the parser's surface syntax) exercising them. Generators are
// deterministic in (rows, seed) and stream through store.NewWriter, so
// memory stays O(columns + distinct strings) regardless of rows — the
// corpus scales from quick CI sizes to the 10⁶–10⁸-tuple runs the
// benchmark methodology in docs/BENCHMARKS.md uses.
type Scenario struct {
	// Name identifies the scenario ("sensor-dedup", "entity-resolution",
	// "repair-whatif").
	Name string
	// Description says what real workload the scenario models.
	Description string
	// Relations lists the relation names Generate produces, in order.
	Relations []string
	// Query is a UA program over Relations, runnable as-is via pdbcli or
	// pdb.DB.Prepare.
	Query string
	// Generate writes one pdbstore file per relation under dir
	// (<Name>.pdbs) totalling about rows tuples, and returns the
	// relation-name → path map in pdb.Open's source format.
	Generate func(dir string, rows, seed int64) (map[string]string, error)
}

// Scenarios returns the corpus registry in stable order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "sensor-dedup",
			Description: "duplicate sensor readings per (sensor, epoch); repair-key " +
				"deduplicates by calibration confidence and conf scores hot sensors",
			Relations: []string{"Readings"},
			Query: `conf(project[Sensor](select[Value >= 27.5](` +
				`repairkey[Sensor, Epoch @ Conf](Readings))))`,
			Generate: generateSensorDedup,
		},
		{
			Name: "entity-resolution",
			Description: "candidate canonical records per duplicate customer cluster " +
				"joined against orders; conf ranks names by large-order probability",
			Relations: []string{"Candidates", "Orders"},
			Query: `R := project[Cluster, Name](repairkey[Cluster @ Weight](Candidates));
conf(project[Name](join(R, select[Amount >= 900](Orders))))`,
			Generate: generateEntityResolution,
		},
		{
			Name: "repair-whatif",
			Description: "supplier offers per part; repair-key models the sourcing " +
				"choice and conf asks which parts risk exceeding the cost budget",
			Relations: []string{"Parts"},
			Query: `conf(project[Part](select[Cost >= 75](` +
				`repairkey[Part @ Weight](Parts))))`,
			Generate: generateRepairWhatIf,
		},
	}
}

// ScenarioByName returns the named corpus scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: no corpus scenario %q", name)
}

// relStream writes one relation through a store.Writer, aborting the
// writer if the row producer fails.
func relStream(dir, name string, schema rel.Schema, emit func(write func(rel.Tuple) error) error) (string, error) {
	path := filepath.Join(dir, name+".pdbs")
	w, err := store.NewWriter(path, schema)
	if err != nil {
		return "", err
	}
	if err := emit(w.Write); err != nil {
		w.Abort()
		return "", err
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// generateSensorDedup emits Readings(Sensor, Epoch, Value, Conf): each
// (sensor, epoch) key carries 1–3 duplicate readings from redundant
// acquisition, each with a calibration confidence used as the repair-key
// weight. All columns are numeric, so the dictionary stays empty and the
// file is pure fixed-width columns.
func generateSensorDedup(dir string, rows, seed int64) (map[string]string, error) {
	rng := rand.New(rand.NewSource(seed))
	const epochs = 24
	schema := rel.NewSchema("Sensor", "Epoch", "Value", "Conf")
	path, err := relStream(dir, "Readings", schema, func(write func(rel.Tuple) error) error {
		var written int64
		for key := int64(0); written < rows; key++ {
			sensor, epoch := key/epochs, key%epochs
			base := 20 + 10*rng.Float64() // per-key true temperature
			dups := 1 + rng.Intn(3)
			for d := 0; d < dups && written < rows; d++ {
				if err := write(rel.Tuple{
					rel.Int(sensor),
					rel.Int(epoch),
					rel.Float(base + 0.5*rng.NormFloat64()),
					rel.Float(0.05 + 0.95*rng.Float64()),
				}); err != nil {
					return err
				}
				written++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return map[string]string{"Readings": path}, nil
}

// nameParts bounds the string dictionary of the entity-resolution
// scenario: candidate names combine a first and a last name from fixed
// pools, so distinct strings stay ≤ len(first)·len(last) at any scale.
var (
	firstNames = []string{
		"Alex", "Bo", "Casey", "Dana", "Eli", "Fran", "Gray", "Hanna",
		"Ira", "Jo", "Kim", "Lee", "Mika", "Noor", "Olga", "Pat",
		"Quinn", "Ray", "Sam", "Tess", "Uma", "Val", "Wen", "Yuri",
	}
	lastNames = []string{
		"Adler", "Brook", "Chen", "Diaz", "Egan", "Fox", "Gupta", "Hale",
		"Ito", "Jones", "Khan", "Lund", "Mori", "Nunez", "Ochoa", "Park",
		"Quist", "Rossi", "Silva", "Tran", "Ueda", "Vance", "Wong", "Zhu",
	}
)

// generateEntityResolution emits Candidates(Cluster, Name, Weight) — 2–4
// alternative canonical records per duplicate cluster with match weights
// — and Orders(Cluster, Amount). Roughly 60% of the row budget goes to
// candidates and 40% to orders, with order clusters drawn from the same
// id space so the join hits.
func generateEntityResolution(dir string, rows, seed int64) (map[string]string, error) {
	rng := rand.New(rand.NewSource(seed))
	candRows := rows * 6 / 10
	if candRows < 1 {
		candRows = 1
	}
	orderRows := rows - candRows
	if orderRows < 1 {
		orderRows = 1
	}
	var clusters int64
	cand, err := relStream(dir, "Candidates", rel.NewSchema("Cluster", "Name", "Weight"), func(write func(rel.Tuple) error) error {
		var written int64
		for ; written < candRows; clusters++ {
			alts := 2 + rng.Intn(3)
			used := make(map[string]bool, alts)
			for a := 0; a < alts && written < candRows; a++ {
				// Distinct names within a cluster: repair-key reads the
				// tuple minus the weight column as the alternative, so a
				// repeated (Cluster, Name) with a different weight would
				// be rejected as conflicting.
				name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
				for used[name] {
					name = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
				}
				used[name] = true
				w := 0.1 + rng.Float64()
				if a == 0 && rng.Intn(2) == 0 {
					w += 2 // dominant candidate: cleanly resolvable cluster
				}
				if err := write(rel.Tuple{
					rel.Int(clusters),
					rel.String(name),
					rel.Float(w),
				}); err != nil {
					return err
				}
				written++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	orders, err := relStream(dir, "Orders", rel.NewSchema("Cluster", "Amount"), func(write func(rel.Tuple) error) error {
		for i := int64(0); i < orderRows; i++ {
			if err := write(rel.Tuple{
				rel.Int(rng.Int63n(clusters)),
				rel.Int(1 + rng.Int63n(1000)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return map[string]string{"Candidates": cand, "Orders": orders}, nil
}

// supplierNames is the fixed supplier pool of the repair-whatif scenario.
var supplierNames = []string{
	"acme", "borealis", "cirrus", "dynamo", "ember", "forge", "gale",
	"harbor", "ion", "junction", "keystone", "lumen", "meridian",
	"nimbus", "orbit", "pylon",
}

// generateRepairWhatIf emits Parts(Part, Supplier, Cost, Weight): 2–5
// supplier offers per part, each with a cost and a sourcing-preference
// weight. repair-key over Part models the what-if sourcing choice.
func generateRepairWhatIf(dir string, rows, seed int64) (map[string]string, error) {
	rng := rand.New(rand.NewSource(seed))
	schema := rel.NewSchema("Part", "Supplier", "Cost", "Weight")
	path, err := relStream(dir, "Parts", schema, func(write func(rel.Tuple) error) error {
		var written int64
		for part := int64(0); written < rows; part++ {
			offers := 2 + rng.Intn(4)
			base := 40 + 50*rng.Float64() // per-part reference cost
			for o := 0; o < offers && written < rows; o++ {
				if err := write(rel.Tuple{
					rel.Int(part),
					rel.String(supplierNames[rng.Intn(len(supplierNames))]),
					rel.Float(base * (0.8 + 0.4*rng.Float64())),
					rel.Float(0.1 + rng.Float64()),
				}); err != nil {
					return err
				}
				written++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return map[string]string{"Parts": path}, nil
}
