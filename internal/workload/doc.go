// Package workload generates the synthetic databases, clause sets, and
// on-disk corpora the experiments and benchmarks run on.
//
// The in-memory generators (TupleIndependent, MultiClause, CoinBag,
// DirtyCustomers, SensorReadings) build small urel databases directly:
// tuple-independent relations, multi-clause lineages requiring genuine
// Karp–Luby estimation, generalized coin bags (Example 2.2 at scale), and
// the data-cleaning / sensor use cases the paper's introduction motivates.
// All are deterministic given their *rand.Rand.
//
// The corpus generators (Scenarios, Scenario.Generate) instead stream
// pdbstore files (internal/store) to disk for out-of-core benchmarking:
//
//   - sensor-dedup: duplicate sensor readings deduplicated by
//     repair-key over a calibration confidence;
//   - entity-resolution: candidate canonical records per duplicate
//     cluster joined against an orders relation;
//   - repair-whatif: supplier offers per part with a what-if sourcing
//     choice under a cost budget.
//
// Each scenario pairs its generator with a runnable UA query, is
// deterministic in (rows, seed), and writes through store.NewWriter so
// generation memory is O(columns + distinct strings) — string domains are
// drawn from fixed pools precisely so the dictionary stays bounded at
// 10⁶–10⁸ tuples. docs/BENCHMARKS.md documents how the benchmark suite
// uses these corpora.
package workload
