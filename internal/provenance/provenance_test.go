package provenance

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErrMapBasics(t *testing.T) {
	m := Reliable()
	if !m.IsReliable() || m.Max() != 0 {
		t.Error("fresh map should be reliable")
	}
	m.Add("a", 0.1)
	m.Add("a", 0.2)
	if math.Abs(m.Get("a")-0.3) > 1e-12 {
		t.Errorf("Add accumulate = %v", m.Get("a"))
	}
	m.Set("b", 0.5)
	if m.Max() != 0.5 {
		t.Errorf("Max = %v", m.Max())
	}
	m.Set("b", 0)
	if _, ok := m["b"]; ok {
		t.Error("Set(0) should delete")
	}
	m.Add("c", 0)
	if _, ok := m["c"]; ok {
		t.Error("Add(0) should not create an entry")
	}
	cl := m.Clone()
	cl.Add("a", 1)
	if math.Abs(m.Get("a")-0.3) > 1e-12 {
		t.Error("Clone not independent")
	}
}

func TestDeltaPrime(t *testing.T) {
	if DeltaPrime(0.1, 0) != 1 {
		t.Error("zero rounds must give trivial bound")
	}
	// δ'(ε, l) = 2e^{−lε²/3} (below the clamp).
	want := 2 * math.Exp(-2000*0.01/3)
	if got := DeltaPrime(0.1, 2000); math.Abs(got-want) > 1e-12 {
		t.Errorf("DeltaPrime = %v, want %v", got, want)
	}
	if DeltaPrime(0.01, 1) != 1 {
		t.Error("bound must clamp at 1")
	}
}

func TestRoundsForInverts(t *testing.T) {
	f := func(e, d uint8) bool {
		eps := 0.01 + float64(e%200)/250
		target := 0.001 + float64(d%200)/250
		l := RoundsFor(eps, target)
		return DeltaPrime(eps, l) <= target+1e-12 && (l <= 1 || DeltaPrime(eps, l-1) >= target*(1-1e-9))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProposition66Bound(t *testing.T) {
	// k·d·n^{k·d}·δ'(ε₀,l): spot check and monotonicity.
	b := Proposition66Bound(2, 1, 10, 0.1, 10000)
	want := 2 * 1 * math.Pow(10, 2) * DeltaPrime(0.1, 10000)
	if math.Abs(b-want) > 1e-9*want {
		t.Errorf("bound = %v, want %v", b, want)
	}
	if Proposition66Bound(2, 2, 10, 0.1, 10000) <= b {
		t.Error("deeper nesting must weaken the bound")
	}
	// RoundsForProposition66 pushes the bound below δ.
	l := RoundsForProposition66(2, 1, 10, 0.1, 0.05)
	if got := Proposition66Bound(2, 1, 10, 0.1, l); got > 0.05+1e-9 {
		t.Errorf("bound after l₀ rounds = %v > δ", got)
	}
}
