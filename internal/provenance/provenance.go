// Package provenance implements the error-bound accounting of Section 6 of
// the paper: the provenance relation ≺ links result tuples to the input
// tuples whose membership can change them, and Lemma 6.4 bounds the
// probability that a tuple's membership differs between the exact query Q
// and its approximate version Q∼ by the sum of the error bounds of its
// provenance plus k·δ'(max(ε_φ, ε₀), l) for each approximate selection on
// the path.
//
// An ErrMap attaches an error bound µ(t) (an upper bound on
// Pr[t ∈ Q ⇎ t ∈ Q∼]) to each data tuple of a relation, keyed by the
// tuple's canonical key. Reliable relations have µ ≡ 0, represented by an
// empty map; the propagation rules mirror the ≺ cases:
//
//	(t.Ā, π_Ā(R)) ≺ (t, R)   — projection sums contributors (Example 6.5)
//	(t, σ_φ(R))   ≺ (t, R)   — selection preserves µ
//	(t, R ∪ S)    ≺ both     — union sums both sides
//	(⟨r,s⟩, R×S)  ≺ (r,R),(s,S) — product adds the factors' µ
package provenance

import (
	"math"
)

// ErrMap maps a tuple key (rel.Tuple.Key) to its membership-error bound µ.
// A missing key means µ = 0 (reliable). Bounds are not clamped during
// propagation — they are probabilities' upper bounds and may exceed 1;
// callers clamp for reporting.
type ErrMap map[string]float64

// Reliable returns the µ ≡ 0 map.
func Reliable() ErrMap { return ErrMap{} }

// Get returns µ(key).
func (m ErrMap) Get(key string) float64 { return m[key] }

// Add accumulates err onto key.
func (m ErrMap) Add(key string, err float64) {
	if err != 0 {
		m[key] += err
	}
}

// Set overwrites the bound for key.
func (m ErrMap) Set(key string, err float64) {
	if err != 0 {
		m[key] = err
	} else {
		delete(m, key)
	}
}

// Max returns the largest bound in the map (0 if empty).
func (m ErrMap) Max() float64 {
	worst := 0.0
	for _, v := range m {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Clone copies the map.
func (m ErrMap) Clone() ErrMap {
	out := make(ErrMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// IsReliable reports whether all bounds are zero.
func (m ErrMap) IsReliable() bool { return len(m) == 0 }

// DeltaPrime is the paper's balanced per-value error bound
// δ'(ε, l) = 2·e^{−l·ε²/3}, the Karp–Luby Chernoff bound after l rounds
// of |F| trials each (end of Section 5).
func DeltaPrime(eps float64, l int64) float64 {
	if l <= 0 {
		return 1
	}
	return math.Min(1, 2*math.Exp(-float64(l)*eps*eps/3))
}

// RoundsFor inverts DeltaPrime: the smallest l with δ'(ε, l) ≤ target,
// i.e. l = ⌈3·ln(2/target)/ε²⌉.
func RoundsFor(eps, target float64) int64 {
	return int64(math.Ceil(3 * math.Log(2/target) / (eps * eps)))
}

// Proposition66Bound is the closed-form overall bound of Proposition 6.6:
// k·d·n^{k·d}·δ'(ε₀, l) for a query of σ̂-nesting depth d, arity/argument
// bound k, and active-domain size n, assuming no singularities in the
// provenance. It overflows to +Inf for large parameters, which is fine:
// the bound is only informative when small.
func Proposition66Bound(k, d, n int, eps0 float64, l int64) float64 {
	return float64(k) * float64(d) * math.Pow(float64(n), float64(k*d)) * DeltaPrime(eps0, l)
}

// RoundsForProposition66 returns the l that pushes the Proposition 6.6
// bound below delta: l ≥ 3·ln(2·k·d·n^{k·d}/δ)/ε₀² (Theorem 6.7's l₀).
func RoundsForProposition66(k, d, n int, eps0, delta float64) int64 {
	inner := 2 * float64(k) * float64(d) * math.Pow(float64(n), float64(k*d)) / delta
	return int64(math.Ceil(3 * math.Log(inner) / (eps0 * eps0)))
}
