// Package metrics is a dependency-free Prometheus-compatible metrics
// registry: counters, gauges, and histograms — plain and labelled —
// rendered in the text exposition format (version 0.0.4) any Prometheus
// scraper understands. It exists so the query service can expose a
// /metrics endpoint without pulling the prometheus client library into a
// module that otherwise has no dependencies.
//
// The write path is lock-free for unlabelled instruments (atomics) and a
// short mutex for labelled lookups; Observe/Inc/Add are safe for
// concurrent use from request handlers and pool workers. Rendering takes
// a point-in-time snapshot; families render in registration order and
// label sets in sorted order, so scrapes are stable and diffable.
//
// Registration is configuration-time programming: invalid or duplicate
// metric names panic at construction rather than surfacing mid-scrape.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must not be negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative deltas allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets, plus a
// running sum and count — the Prometheus histogram layout, so quantiles
// can be estimated server-side with histogram_quantile().
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// DefBuckets are the default histogram buckets: latency-shaped, in
// seconds, matching the prometheus client library's defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// vec holds the labelled children of one metric family, keyed by the
// label-value tuple.
type vec[T any] struct {
	mu       sync.Mutex
	labels   []string
	children map[string]*child[T]
	make     func() *T
}

type child[T any] struct {
	values []string
	metric *T
}

func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: got %d label values for labels %v", len(values), v.labels))
	}
	key := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &child[T]{values: append([]string(nil), values...), metric: v.make()}
		v.children[key] = c
	}
	return c.metric
}

// snapshot returns the children sorted by label values, for stable
// rendering.
func (v *vec[T]) snapshot() []*child[T] {
	v.mu.Lock()
	out := make([]*child[T], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i].values {
			if out[i].values[k] != out[j].values[k] {
				return out[i].values[k] < out[j].values[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a family of Counters partitioned by label values.
type CounterVec struct{ vec[Counter] }

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the declared labels.
func (v *CounterVec) With(values ...string) *Counter { return v.with(values) }

// GaugeVec is a family of Gauges partitioned by label values.
type GaugeVec struct{ vec[Gauge] }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.with(values) }

// HistogramVec is a family of Histograms partitioned by label values.
type HistogramVec struct {
	vec[Histogram]
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.with(values) }

// family is one registered metric family and how to render its samples.
type family struct {
	name, help, typ string
	render          func(w io.Writer)
}

// Registry holds metric families and renders them as one exposition page.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func (r *Registry) register(name, help, typ string, labels []string, render func(io.Writer)) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.names[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, render: render})
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", nil, func(w io.Writer) {
		writeSample(w, name, nil, nil, float64(c.Value()))
	})
	return c
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — for monotone totals another component already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, func(w io.Writer) {
		writeSample(w, name, nil, nil, fn())
	})
}

// LabeledValue is one sample of a labelled func-backed family: the label
// values (matching the family's label names in order) and the reading.
type LabeledValue struct {
	Labels []string
	Value  float64
}

// CounterVecFunc registers a labelled counter family whose samples are
// read by fn at scrape time — for per-entity monotone totals another
// component already maintains (e.g. per-shard RPC counts held by a
// cluster coordinator).
func (r *Registry) CounterVecFunc(name, help string, labels []string, fn func() []LabeledValue) {
	r.register(name, help, "counter", labels, func(w io.Writer) {
		for _, s := range fn() {
			writeSample(w, name, labels, s.Labels, s.Value)
		}
	})
}

// GaugeVecFunc registers a labelled gauge family whose samples are read
// by fn at scrape time.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []LabeledValue) {
	r.register(name, help, "gauge", labels, func(w io.Writer) {
		for _, s := range fn() {
			writeSample(w, name, labels, s.Labels, s.Value)
		}
	})
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{vec[Counter]{labels: labels, children: map[string]*child[Counter]{}, make: func() *Counter { return &Counter{} }}}
	r.register(name, help, "counter", labels, func(w io.Writer) {
		for _, c := range v.snapshot() {
			writeSample(w, name, labels, c.values, float64(c.metric.Value()))
		}
	})
	return v
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", nil, func(w io.Writer) {
		writeSample(w, name, nil, nil, float64(g.Value()))
	})
	return g
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, func(w io.Writer) {
		writeSample(w, name, nil, nil, fn())
	})
}

// GaugeVec registers and returns a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{vec[Gauge]{labels: labels, children: map[string]*child[Gauge]{}, make: func() *Gauge { return &Gauge{} }}}
	r.register(name, help, "gauge", labels, func(w io.Writer) {
		for _, c := range v.snapshot() {
			writeSample(w, name, labels, c.values, float64(c.metric.Value()))
		}
	})
	return v
}

// Histogram registers and returns a new histogram with the given upper
// bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", nil, func(w io.Writer) {
		renderHistogram(w, name, nil, nil, h)
	})
	return h
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bs := append([]float64(nil), buckets...)
	v := &HistogramVec{vec[Histogram]{labels: labels, children: map[string]*child[Histogram]{}, make: func() *Histogram { return newHistogram(bs) }}}
	r.register(name, help, "histogram", labels, func(w io.Writer) {
		for _, c := range v.snapshot() {
			renderHistogram(w, name, labels, c.values, c.metric)
		}
	})
	return v
}

func renderHistogram(w io.Writer, name string, labels, values []string, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		writeSample(w, name+"_bucket", append(labels, "le"), append(values, formatValue(b)), float64(cum))
	}
	cum += h.buckets[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", append(labels, "le"), append(values, "+Inf"), float64(cum))
	writeSample(w, name+"_sum", labels, values, h.Sum())
	writeSample(w, name+"_count", labels, values, float64(h.Count()))
}

// escapeLabel escapes a label value per the exposition format.
var escapeLabel = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func writeSample(w io.Writer, name string, labels, values []string, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel.Replace(values[i]))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
	_, _ = io.WriteString(w, sb.String())
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeHelp escapes a HELP string per the exposition format.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// Expose renders every registered family in registration order.
func (r *Registry) Expose(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp.Replace(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		f.render(w)
	}
}

// Handler returns an http.Handler serving the exposition page — mount it
// at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Expose(w)
	})
}
