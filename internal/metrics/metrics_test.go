package metrics

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sampleRe matches one exposition sample line:
// name{label="value",...} number — the grammar a Prometheus scraper
// accepts for version 0.0.4 text format.
var sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// parseExposition validates every line of an exposition page and returns
// the sample lines by metric name+labels.
func parseExposition(t *testing.T, page string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(page))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		samples[line[:sp]] = line[sp+1:]
	}
	return samples
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	g := r.Gauge("test_depth", "Current depth.")
	r.GaugeFunc("test_pulled", "Pulled at scrape.", func() float64 { return 7 })
	r.CounterFunc("test_pulled_total", "Pulled counter.", func() float64 { return 9 })
	c.Add(41)
	c.Inc()
	g.Set(5)
	g.Dec()

	var sb strings.Builder
	r.Expose(&sb)
	page := sb.String()
	samples := parseExposition(t, page)
	for name, want := range map[string]string{
		"test_events_total": "42",
		"test_depth":        "4",
		"test_pulled":       "7",
		"test_pulled_total": "9",
	} {
		if samples[name] != want {
			t.Errorf("%s = %q, want %q", name, samples[name], want)
		}
	}
	for _, header := range []string{
		"# HELP test_events_total Events seen.",
		"# TYPE test_events_total counter",
		"# TYPE test_depth gauge",
	} {
		if !strings.Contains(page, header+"\n") {
			t.Errorf("missing header %q in:\n%s", header, page)
		}
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests.", "route", "status")
	v.With("/v1/query", "200").Add(3)
	v.With("/v1/query", "429").Inc()
	v.With(`we"ird\label`+"\n", "200").Inc()

	var sb strings.Builder
	r.Expose(&sb)
	samples := parseExposition(t, sb.String())
	if samples[`test_requests_total{route="/v1/query",status="200"}`] != "3" {
		t.Errorf("labelled sample missing: %v", samples)
	}
	if samples[`test_requests_total{route="/v1/query",status="429"}`] != "1" {
		t.Errorf("second label set missing: %v", samples)
	}
	if samples[`test_requests_total{route="we\"ird\\label\n",status="200"}`] != "1" {
		t.Errorf("escaped label set missing: %v", samples)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	r.Expose(&sb)
	samples := parseExposition(t, sb.String())
	for key, want := range map[string]string{
		`test_latency_seconds_bucket{le="0.1"}`:  "1",
		`test_latency_seconds_bucket{le="1"}`:    "3",
		`test_latency_seconds_bucket{le="10"}`:   "4",
		`test_latency_seconds_bucket{le="+Inf"}`: "5",
		"test_latency_seconds_count":             "5",
		"test_latency_seconds_sum":               "56.05",
	} {
		if samples[key] != want {
			t.Errorf("%s = %q, want %q", key, samples[key], want)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_dur_seconds", "Durations.", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(2)
	v.With("/b").Observe(0.1)
	var sb strings.Builder
	r.Expose(&sb)
	samples := parseExposition(t, sb.String())
	if samples[`test_dur_seconds_bucket{route="/a",le="1"}`] != "1" ||
		samples[`test_dur_seconds_bucket{route="/a",le="+Inf"}`] != "2" ||
		samples[`test_dur_seconds_count{route="/b"}`] != "1" {
		t.Errorf("histogram vec samples wrong: %v", samples)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	mustPanic("duplicate name", func() { r.Gauge("ok_total", "dup") })
	mustPanic("bad name", func() { r.Counter("0bad", "x") })
	mustPanic("bad label", func() { r.CounterVec("ok2_total", "x", "0bad") })
	mustPanic("negative counter add", func() { r.Counter("ok3_total", "x").Add(-1) })
	mustPanic("bad buckets", func() { r.Histogram("ok4", "x", []float64{2, 1}) })
	v := r.CounterVec("ok5_total", "x", "a", "b")
	mustPanic("label arity", func() { v.With("only-one") })
}

// TestConcurrentUse hammers one registry from many goroutines while
// scraping it — run under -race this vets the whole write path.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	g := r.Gauge("test_g", "g")
	v := r.CounterVec("test_v_total", "v", "k")
	h := r.Histogram("test_h", "h", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				v.With(fmt.Sprintf("k%d", i%3)).Inc()
				h.Observe(float64(j) / 1000)
				if j%100 == 0 {
					var sb strings.Builder
					r.Expose(&sb)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counts: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "t").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1\n") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}
