package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/pdb"
)

func mustUnmarshal(t *testing.T, line string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(line), v); err != nil {
		t.Fatalf("unmarshaling %q: %v", line, err)
	}
}

// clusterServer builds a server whose engine scatters sampling to n
// in-process shard servers — the full coordinator deployment shape, with
// tenancy, quotas, and admission staying on the HTTP front-end.
func clusterServer(t *testing.T, cfg Config, n int) *Server {
	t.Helper()
	rows := [][]any{}
	probs := []float64{}
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			rows = append(rows, []any{fmt.Sprintf("s%d", s), r})
			probs = append(probs, 0.3)
		}
	}
	db, err := pdb.NewBuilder().
		Independent("Obs", []string{"Sensor", "Reading"}, rows, probs).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]string, n)
	for i := range peers {
		sh := cluster.NewShard(cluster.ShardConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = ln.Addr().String()
		go sh.Serve(ln)
		t.Cleanup(func() { sh.Close() })
	}
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{Peers: peers}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg.Engine = eng
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestClusteredServiceEndToEnd: the HTTP service over a clustered engine
// streams the same rows a single-node service does, and tenant scoping
// and quotas are still enforced at the coordinator — shards never see
// HTTP traffic.
func TestClusteredServiceEndToEnd(t *testing.T) {
	cfg := Config{
		TenantHeader:  tenantHdr,
		StrictTenants: true,
		Quotas: map[string]Quota{
			"alpha":  {},
			"bursty": {TrialsPerSec: 0.5, TrialsBurst: 1},
		},
	}
	single := httptest.NewServer(testServer(t, Config{
		TenantHeader: tenantHdr, Quotas: map[string]Quota{"alpha": {}},
	}))
	defer single.Close()
	clustered := httptest.NewServer(clusterServer(t, cfg, 2))
	defer clustered.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	// Same rows, byte-identical values, through the cluster.
	status, _, rows, _ := postQueryAs(t, clustered, "alpha", body)
	if status != http.StatusOK {
		t.Fatalf("clustered query: status %d, want 200", status)
	}
	wstatus, _, wrows, _ := postQueryAs(t, single, "alpha", body)
	if wstatus != http.StatusOK {
		t.Fatalf("single-node query: status %d, want 200", wstatus)
	}
	if len(rows) != len(wrows) {
		t.Fatalf("clustered streamed %d rows, single-node %d", len(rows), len(wrows))
	}
	for i := range rows {
		if fmt.Sprintf("%v", rows[i]) != fmt.Sprintf("%v", wrows[i]) {
			t.Errorf("row %d diverges: %v vs %v", i, rows[i], wrows[i])
		}
	}

	// 403: unknown tenant, rejected before any shard RPC.
	if status, er, _ := postAs(t, clustered, "stranger", body); status != http.StatusForbidden || er.Kind != "forbidden" {
		t.Errorf("unknown tenant on cluster: status %d kind %q, want 403 forbidden", status, er.Kind)
	}

	// 429: a tenant that overdraws its rate quota is shed at the
	// coordinator. A fresh seed keeps the query out of the engine cache so
	// it genuinely samples (cached evaluations cost no trials).
	body = fmt.Sprintf(`{"program": %q, "seed": 99}`, testProgram)
	if status, _, _ := postAs(t, clustered, "bursty", body); status != http.StatusOK {
		t.Fatalf("first bursty query: status %d, want 200", status)
	}
	if status, er, _ := postAs(t, clustered, "bursty", body); status != http.StatusTooManyRequests || er.Kind != "overloaded" {
		t.Errorf("indebted tenant on cluster: status %d kind %q, want 429 overloaded", status, er.Kind)
	}

	// /v1/stats grows a cluster section with one entry per shard.
	resp, err := http.Get(clustered.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"cluster"`, `"shards_total":2`, `"batches"`} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("/v1/stats missing %s in %s", want, stats)
		}
	}

	// /metrics exports the per-shard series.
	resp, err = http.Get(clustered.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pdb_cluster_shard_rpcs_total{shard=",
		"pdb_cluster_shard_healthy{shard=",
		"pdb_cluster_shard_sent_bytes_total{shard=",
		"pdb_cluster_batches_total",
		"pdb_cluster_merge_seconds_total",
	} {
		if !strings.Contains(string(metricsText), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// postQueryAs is postQuery with a tenant header.
func postQueryAs(t *testing.T, ts *httptest.Server, tenant, body string) (int, queryHeader, []queryRow, queryTrailer) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHdr, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hdr queryHeader
	var rows []queryRow
	var tr queryTrailer
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, hdr, rows, tr
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for i, line := range lines {
		switch {
		case i == 0:
			mustUnmarshal(t, line, &hdr)
		case strings.Contains(line, `"stats"`):
			mustUnmarshal(t, line, &tr)
		default:
			var row queryRow
			mustUnmarshal(t, line, &row)
			rows = append(rows, row)
		}
	}
	return resp.StatusCode, hdr, rows, tr
}
