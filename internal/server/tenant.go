package server

import (
	"context"
	"math"
	"sync"
	"time"
)

// Quota bounds what one tenant may do concurrently and over time. The
// zero value means "unlimited" for every dimension.
type Quota struct {
	// MaxConcurrent caps the tenant's simultaneously running queries;
	// excess requests are rejected with 429 (0 = unlimited).
	MaxConcurrent int
	// TrialsPerSec is the tenant's sustained sampled-trials budget,
	// enforced as a token bucket charged *after* each evaluation with the
	// trials it actually sampled (cached/reused trials are free). A
	// tenant may overdraw on one query; while the bucket is in debt,
	// further queries get 429 with a Retry-After for the refill time
	// (0 = unlimited).
	TrialsPerSec float64
	// TrialsBurst is the bucket capacity — how many trials a tenant can
	// spend at once after idling. Defaults to TrialsPerSec (1 second of
	// budget) when 0.
	TrialsBurst int64
	// MaxTrials / MaxMemory cap a single request's resource limits,
	// layered on the server-wide caps: the tightest positive bound wins
	// (0 = no tenant-specific cap).
	MaxTrials int64
	MaxMemory int64
}

// unlimited reports whether the quota constrains nothing.
func (q Quota) unlimited() bool { return q == Quota{} }

// burst returns the effective bucket capacity.
func (q Quota) burst() float64 {
	if q.TrialsBurst > 0 {
		return float64(q.TrialsBurst)
	}
	if q.TrialsPerSec > 0 {
		return q.TrialsPerSec
	}
	return 0
}

// tenantState is one tenant's live accounting: in-flight queries and the
// trials token bucket (tokens may go negative — debt — because trials are
// charged after the fact).
type tenantState struct {
	inFlight int
	tokens   float64
	last     time.Time
}

// tenantSet tracks per-tenant state. One mutex guards all tenants: the
// operations are a few comparisons and the tenant count is
// configuration-bounded, so contention is negligible next to evaluation.
type tenantSet struct {
	mu     sync.Mutex
	states map[string]*tenantState
}

func newTenantSet() *tenantSet {
	return &tenantSet{states: make(map[string]*tenantState)}
}

func (t *tenantSet) state(name string, now time.Time) *tenantState {
	st, ok := t.states[name]
	if !ok {
		st = &tenantState{last: now}
		t.states[name] = st
	}
	return st
}

// refill advances the token bucket to now, clamped at the burst capacity.
func (st *tenantState) refill(q Quota, now time.Time) {
	if q.TrialsPerSec <= 0 {
		return
	}
	if dt := now.Sub(st.last).Seconds(); dt > 0 {
		st.tokens = math.Min(st.tokens+dt*q.TrialsPerSec, q.burst())
	}
	st.last = now
}

// acquire admits one query for the tenant, or rejects it with a reason
// ("concurrency" or "rate") and a Retry-After hint. The returned release
// must be called exactly once when the query finishes.
func (t *tenantSet) acquire(name string, q Quota, now time.Time) (release func(), reason string, retryAfter time.Duration, ok bool) {
	if q.unlimited() {
		return func() {}, "", 0, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.state(name, now)
	st.refill(q, now)
	if q.MaxConcurrent > 0 && st.inFlight >= q.MaxConcurrent {
		return nil, "concurrency", time.Second, false
	}
	if q.TrialsPerSec > 0 && st.tokens < 0 {
		// In debt from earlier queries: the client should come back once
		// the bucket refills to zero.
		wait := time.Duration(math.Ceil(-st.tokens/q.TrialsPerSec)) * time.Second
		if wait < time.Second {
			wait = time.Second
		}
		return nil, "rate", wait, false
	}
	st.inFlight++
	return func() {
		t.mu.Lock()
		st.inFlight--
		t.mu.Unlock()
	}, "", 0, true
}

// charge debits the tenant's bucket with the trials an evaluation
// actually sampled.
func (t *tenantSet) charge(name string, q Quota, trials int64, now time.Time) {
	if q.TrialsPerSec <= 0 || trials <= 0 {
		return
	}
	t.mu.Lock()
	st := t.state(name, now)
	st.refill(q, now)
	st.tokens -= float64(trials)
	t.mu.Unlock()
}

// admission is the global back-stop behind the per-tenant quotas: a
// bounded pool of evaluation slots plus a small wait queue, so a
// saturated engine queues briefly and then sheds load with 429 instead of
// accumulating unbounded concurrent evaluations.
type admission struct {
	slots   chan struct{}
	queue   int
	maxWait time.Duration

	mu      sync.Mutex
	waiting int
}

// newAdmission builds a controller admitting maxInFlight concurrent
// evaluations with up to queue waiters, each waiting at most maxWait.
func newAdmission(maxInFlight, queue int, maxWait time.Duration) *admission {
	if maxWait <= 0 {
		maxWait = time.Second
	}
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		queue:   queue,
		maxWait: maxWait,
	}
}

// inFlight reports the number of admitted evaluations (metrics gauge).
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

// waitingNow reports the current queue depth (metrics gauge).
func (a *admission) waitingNow() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// acquire admits one evaluation, waiting in the bounded queue if the
// slots are full. On rejection, reason is "queue_full" or "wait_timeout"
// ("canceled" when the client went away first); waited reports the queue
// time either way. A nil admission admits everything.
func (a *admission) acquire(ctx context.Context) (release func(), reason string, waited time.Duration, ok bool) {
	if a == nil {
		return func() {}, "", 0, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, "", 0, true
	default:
	}
	a.mu.Lock()
	if a.waiting >= a.queue {
		a.mu.Unlock()
		return nil, "queue_full", 0, false
	}
	a.waiting++
	a.mu.Unlock()
	start := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	defer func() {
		a.mu.Lock()
		a.waiting--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		return a.release, "", time.Since(start), true
	case <-timer.C:
		return nil, "wait_timeout", time.Since(start), false
	case <-ctx.Done():
		return nil, "canceled", time.Since(start), false
	}
}

func (a *admission) release() { <-a.slots }

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up with a floor of 1 (Retry-After: 0 invites an immediate
// hammer).
func retryAfterSeconds(d time.Duration) int64 {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
