package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// reloadableQuotas is a swappable quota source backing Config.QuotaReloader.
type reloadableQuotas struct {
	mu     sync.Mutex
	quotas map[string]Quota
	def    Quota
	err    error
}

func (r *reloadableQuotas) load() (map[string]Quota, Quota, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quotas, r.def, r.err
}

func (r *reloadableQuotas) set(q map[string]Quota, def Quota, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.quotas, r.def, r.err = q, def, err
}

func postReload(t *testing.T, ts *httptest.Server) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 512)
	n, _ := resp.Body.Read(buf)
	return resp.StatusCode, string(buf[:n])
}

// TestQuotaReloadTightensMidFlight: a reload that tightens a tenant's
// concurrency quota takes effect for the next request while an
// in-flight request — admitted under the old quota — runs (and
// releases) unaffected.
func TestQuotaReloadTightensMidFlight(t *testing.T) {
	old := Quota{MaxConcurrent: 4}
	src := &reloadableQuotas{quotas: map[string]Quota{"alpha": old}}
	srv := testServer(t, Config{
		TenantHeader:  tenantHdr,
		Quotas:        map[string]Quota{"alpha": old},
		QuotaReloader: src.load,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	// An in-flight evaluation holds a slot under the generous quota.
	release, reason, _, ok := srv.tenants.acquire("alpha", old, time.Now())
	if !ok {
		t.Fatalf("setup acquire failed: %s", reason)
	}

	// Tighten to one concurrent query and reload mid-flight.
	src.set(map[string]Quota{"alpha": {MaxConcurrent: 1}}, Quota{}, nil)
	status, respBody := postReload(t, ts)
	if status != http.StatusOK || !strings.Contains(respBody, `"ok":true`) {
		t.Fatalf("reload: status %d body %q, want 200 ok", status, respBody)
	}

	// The next request resolves the tightened quota: the in-flight slot
	// already fills it, so the request is shed with 429.
	status, er, retry := postAs(t, ts, "alpha", body)
	if status != http.StatusTooManyRequests || er.Kind != "overloaded" || retry == "" {
		t.Errorf("post-tightening request: status %d kind %q retry %q, want 429 overloaded", status, er.Kind, retry)
	}

	// The in-flight request finishes normally; with its slot released the
	// tenant fits the new limit again.
	release()
	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Errorf("after release: status %d, want 200", status)
	}
}

// TestQuotaReloadRejectsBadTables: reloader errors and invalid tables
// leave the previous quotas in force (and surface as 502); a server
// without a reloader answers 501.
func TestQuotaReloadRejectsBadTables(t *testing.T) {
	src := &reloadableQuotas{quotas: map[string]Quota{"alpha": {}}}
	srv := testServer(t, Config{
		TenantHeader:  tenantHdr,
		StrictTenants: true,
		Quotas:        map[string]Quota{"alpha": {}},
		QuotaReloader: src.load,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	// Invalid table: negative bounds must be rejected, old table kept.
	src.set(map[string]Quota{"alpha": {MaxTrials: -1}}, Quota{}, nil)
	if status, _ := postReload(t, ts); status != http.StatusBadGateway {
		t.Errorf("invalid table reload: status %d, want 502", status)
	}
	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Errorf("alpha after failed reload: status %d, want 200 (old table in force)", status)
	}

	// Reloader error: same.
	src.set(nil, Quota{}, fmt.Errorf("config store unreachable"))
	if status, _ := postReload(t, ts); status != http.StatusBadGateway {
		t.Errorf("reloader-error reload: status %d, want 502", status)
	}
	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Errorf("alpha after reloader error: status %d, want 200", status)
	}

	// A good reload that drops alpha: strict mode now 403s it.
	src.set(map[string]Quota{"beta": {}}, Quota{}, nil)
	if status, _ := postReload(t, ts); status != http.StatusOK {
		t.Errorf("good reload: status %d, want 200", status)
	}
	if status, er, _ := postAs(t, ts, "alpha", body); status != http.StatusForbidden || er.Kind != "forbidden" {
		t.Errorf("dropped tenant: status %d kind %q, want 403 forbidden", status, er.Kind)
	}
	if status, _, _ := postAs(t, ts, "beta", body); status != http.StatusOK {
		t.Errorf("added tenant: status %d, want 200", status)
	}

	// No reloader configured at all: 501.
	bare := httptest.NewServer(testServer(t, Config{}))
	defer bare.Close()
	if status, _ := postReload(t, bare); status != http.StatusNotImplemented {
		t.Errorf("unconfigured reload: status %d, want 501", status)
	}
}
