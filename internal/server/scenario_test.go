package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/pdb"
)

// Spec scenarios for the query service, written SHALL / WHEN / THEN
// against the HTTP surface: stratified-estimation request fields riding
// through to the engine and back out through the trailer and stats
// endpoints, and the tenant-quota rejection paths.

// hardServer builds a server whose fixture has one hard 12-clause
// lineage component per conf group (a product shares variables across
// clauses), so stratified requests genuinely sample rather than being
// collapsed to exact arithmetic by the factoring pre-pass.
func hardServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	probsR := []float64{0.9, 0.6, 0.05, 0.02, 0.002, 0.0005}
	rowsR := make([][]any, len(probsR))
	for i := range probsR {
		rowsR[i] = []any{int64(i), int64(i / 2)}
	}
	db, err := pdb.NewBuilder().
		Independent("R", []string{"ID", "Grp"}, rowsR, probsR).
		Independent("S", []string{"SID"},
			[][]any{{int64(1)}, {int64(2)}, {int64(3)}, {int64(4)}, {int64(5)}, {int64(6)}},
			[]float64{0.8, 0.3, 0.04, 0.01, 0.002, 0.001}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := db.Engine()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

const hardProgram = `conf as P (project[Grp](product(R, S)));`

// SHALL: the strata / threshold / top_k request fields reach the engine
// and the trailer reports the stratified accounting. WHEN a query runs
// with "strata" set over hard lineage. THEN the response streams every
// row, the trailer shows strata and sampled trials, a repeated request
// replays identically from the cache, and /v1/stats plus /metrics expose
// the cumulative early-stop and factoring counters.
func TestScenarioStratifiedQueryOverHTTP(t *testing.T) {
	ts := httptest.NewServer(hardServer(t, Config{}))
	defer ts.Close()

	body := fmt.Sprintf(`{"program": %q, "seed": 11, "strata": 8, "threshold": 0.5, "conf_epsilon": 0.05, "conf_delta": 0.05}`, hardProgram)
	status, _, rows, tr := postQuery(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 groups (threshold must not filter)", len(rows))
	}
	if tr.Stats.Strata == 0 {
		t.Error("trailer should report strata > 0 for a stratified query")
	}
	if tr.Stats.SampledTrials == 0 {
		t.Error("hard lineage should have sampled trials")
	}

	status2, _, rows2, tr2 := postQuery(t, ts, body)
	if status2 != http.StatusOK {
		t.Fatalf("second status = %d", status2)
	}
	if tr2.Stats.SampledTrials != 0 || tr2.Stats.CacheHits == 0 {
		t.Errorf("repeat: sampled=%d hits=%d, want exact cached replay",
			tr2.Stats.SampledTrials, tr2.Stats.CacheHits)
	}
	for i := range rows2 {
		if rows2[i].Row["P"] != rows[i].Row["P"] {
			t.Errorf("row %d: warm P %v != cold P %v", i, rows2[i].Row["P"], rows[i].Row["P"])
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.EarlyStops < 0 || stats.Engine.ExactFactored < 0 {
		t.Errorf("engine stats missing stratified counters: %+v", stats.Engine)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{"pdb_engine_early_stops_total", "pdb_engine_exact_factored_total"} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// SHALL: out-of-domain stratified options are rejected before any work.
// WHEN a request carries strata, threshold, or top_k values outside
// their domains. THEN the service answers 400 with kind "option".
func TestScenarioStratifiedOptionRejectedOverHTTP(t *testing.T) {
	ts := httptest.NewServer(hardServer(t, Config{}))
	defer ts.Close()
	for name, body := range map[string]string{
		"strata too large": fmt.Sprintf(`{"program": %q, "strata": 5000}`, hardProgram),
		"threshold ≥ 1":    fmt.Sprintf(`{"program": %q, "threshold": 1.5}`, hardProgram),
	} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decoding error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || er.Kind != "option" {
			t.Errorf("%s: status %d kind %q, want 400 option", name, resp.StatusCode, er.Kind)
		}
	}
}

// SHALL: tenant scoping and quotas guard the stratified path like any
// other. WHEN an unknown tenant sends a stratified query in strict mode,
// and a known tenant overdraws its trial bucket with stratified queries.
// THEN the service answers 403 forbidden and 429 overloaded respectively,
// and the allowed, in-quota tenant keeps getting 200s.
func TestScenarioTenantQuotasGuardStratifiedQueries(t *testing.T) {
	srv := hardServer(t, Config{
		TenantHeader:  tenantHdr,
		RequireTenant: true,
		StrictTenants: true,
		Quotas: map[string]Quota{
			"metered": {TrialsPerSec: 0.5, TrialsBurst: 1},
			"open":    {},
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 11, "strata": 4}`, hardProgram)

	if status, er, _ := postAs(t, ts, "stranger", body); status != http.StatusForbidden || er.Kind != "forbidden" {
		t.Errorf("unknown tenant: status %d kind %q, want 403 forbidden", status, er.Kind)
	}
	if status, _, _ := postAs(t, ts, "metered", body); status != http.StatusOK {
		t.Fatalf("first metered query: status %d, want 200", status)
	}
	status, er, retry := postAs(t, ts, "metered", body)
	if status != http.StatusTooManyRequests || er.Kind != "overloaded" {
		t.Errorf("overdrawn tenant: status %d kind %q, want 429 overloaded", status, er.Kind)
	}
	if retry == "" {
		t.Error("429 response should carry Retry-After")
	}
	if status, _, _ := postAs(t, ts, "open", body); status != http.StatusOK {
		t.Errorf("in-quota tenant during metered's debt: status %d, want 200", status)
	}
}
