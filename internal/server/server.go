// Package server implements the HTTP front-end over the public pdb API:
// a long-lived query service whose concurrent requests share one
// pdb.Engine, so the engine's content-keyed estimator cache turns repeated
// and lineage-sharing queries from different clients into cache hits.
//
// Endpoints:
//
//	POST /v1/query   evaluate a UA program; streams NDJSON (one JSON object
//	                 per line: a header with the result schema, one object
//	                 per row with its error bound, then a stats trailer)
//	                 via chunked transfer encoding.
//	GET  /v1/stats   engine + server statistics (cache effectiveness,
//	                 request counters).
//	GET  /healthz    liveness probe.
//
// Per-request timeouts and resource limits map onto context deadlines and
// the pdb WithMaxTrials / WithMaxMemory options; server-level caps clamp
// whatever the client asks for. The handler is safe for concurrent use —
// graceful shutdown is the listener owner's job (see cmd/pdbserve).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/pdb"
)

// Config configures a Server.
type Config struct {
	// Engine is the shared evaluation engine (required).
	Engine *pdb.Engine
	// DefaultTimeout bounds requests that do not set timeout_ms
	// themselves; 0 means no default bound.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts; 0 means unclamped.
	MaxTimeout time.Duration
	// MaxTrials / MaxMemory cap the per-request resource limits. A
	// client's tighter limit is honoured; a looser (or missing) one is
	// clamped to the cap. 0 disables the cap.
	MaxTrials int64
	MaxMemory int64
	// MaxWorkers caps the client-requested per-evaluation worker count
	// (results never depend on it — only goroutine fan-out does). 0
	// selects GOMAXPROCS; negative disables the cap.
	MaxWorkers int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// Logger receives one line per failed request; nil disables logging.
	Logger *log.Logger
}

// Server is the http.Handler of the query service.
type Server struct {
	cfg Config
	eng *pdb.Engine
	mux *http.ServeMux

	start time.Time

	requests     atomic.Int64
	failures     atomic.Int64
	rowsStreamed atomic.Int64

	// prepared caches parsed+validated programs by source text, so a hot
	// query skips the parser. Bounded; on overflow an arbitrary entry is
	// dropped (the cache is an accelerator, not a registry).
	prepMu   sync.Mutex
	prepared map[string]*pdb.Query
}

// maxPreparedQueries bounds the prepared-program cache.
const maxPreparedQueries = 256

// New builds a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:      cfg,
		eng:      cfg.Engine,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		prepared: make(map[string]*pdb.Query),
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// queryRequest is the body of POST /v1/query. Zero values mean "use the
// server's defaults".
type queryRequest struct {
	// Program is the UA program to evaluate (required).
	Program string `json:"program"`

	// Accuracy: ε₀/δ for σ̂ decisions, (ε, δ) for standalone conf.
	Epsilon     float64 `json:"epsilon,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	ConfEpsilon float64 `json:"conf_epsilon,omitempty"`
	ConfDelta   float64 `json:"conf_delta,omitempty"`

	// Determinism and parallelism.
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Resource limits; the server's caps clamp them.
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	MaxTrials      int64 `json:"max_trials,omitempty"`
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`

	// Exact switches to exact (#P) confidence computation.
	Exact bool `json:"exact,omitempty"`
	// NoResume disables estimator reuse for this request (ablation).
	NoResume bool `json:"no_resume,omitempty"`
}

// errorResponse is the body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// queryHeader is the first NDJSON line of a streamed result.
type queryHeader struct {
	Columns  []string `json:"columns"`
	Complete bool     `json:"complete"`
}

// queryRow is one streamed result row.
type queryRow struct {
	Row        map[string]any `json:"row"`
	ErrorBound float64        `json:"error_bound"`
	Singular   bool           `json:"singular,omitempty"`
	Condition  string         `json:"condition,omitempty"`
}

// queryTrailer is the final NDJSON line: evaluation statistics.
type queryTrailer struct {
	Stats queryStats `json:"stats"`
}

type queryStats struct {
	Rows          int     `json:"rows"`
	MaxErrorBound float64 `json:"max_error_bound"`
	FinalRounds   int64   `json:"final_rounds,omitempty"`
	Restarts      int     `json:"restarts,omitempty"`
	SampledTrials int64   `json:"sampled_trials"`
	ReusedTrials  int64   `json:"reused_trials"`
	CacheHits     int64   `json:"cache_hits"`
	ElapsedMS     int64   `json:"elapsed_ms"`
}

// fail writes one JSON error (the response must not have been started).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, kind string, err error) {
	s.failures.Add(1)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("%s %s: %s: %v", r.Method, r.URL.Path, kind, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Kind: kind})
}

// clampLimit combines a client limit with a server cap: the tightest
// positive bound wins.
func clampLimit(req, cap int64) int64 {
	switch {
	case cap <= 0:
		return req
	case req <= 0 || req > cap:
		return cap
	default:
		return req
	}
}

// prepare parses the program, serving hot programs from the bounded
// prepared-query cache.
func (s *Server) prepare(program string) (*pdb.Query, error) {
	s.prepMu.Lock()
	q, ok := s.prepared[program]
	s.prepMu.Unlock()
	if ok {
		return q, nil
	}
	q, err := s.eng.Prepare(program)
	if err != nil {
		return nil, err
	}
	s.prepMu.Lock()
	if len(s.prepared) >= maxPreparedQueries {
		for k := range s.prepared {
			delete(s.prepared, k)
			break
		}
	}
	s.prepared[program] = q
	s.prepMu.Unlock()
	return q, nil
}

// buildOptions maps a request onto pdb options (invalid values surface as
// *pdb.OptionError when the evaluation applies them).
func (s *Server) buildOptions(req queryRequest) []pdb.Option {
	var opts []pdb.Option
	if req.Epsilon != 0 {
		opts = append(opts, pdb.WithEpsilon(req.Epsilon))
	}
	if req.Delta != 0 {
		opts = append(opts, pdb.WithDelta(req.Delta))
	}
	if req.ConfEpsilon != 0 || req.ConfDelta != 0 {
		opts = append(opts, pdb.WithConfBudget(req.ConfEpsilon, req.ConfDelta))
	}
	if req.Seed != 0 {
		opts = append(opts, pdb.WithSeed(req.Seed))
	}
	if req.Workers > 0 {
		// Clamp like the other client-controllable resource knobs: a
		// request may narrow its fan-out but never exceed the server cap
		// (an unset or non-positive count already means GOMAXPROCS).
		w := req.Workers
		if s.cfg.MaxWorkers > 0 && w > s.cfg.MaxWorkers {
			w = s.cfg.MaxWorkers
		}
		opts = append(opts, pdb.WithWorkers(w))
	}
	if req.NoResume {
		opts = append(opts, pdb.WithNoResume())
	}
	if n := clampLimit(req.MaxTrials, s.cfg.MaxTrials); n > 0 {
		opts = append(opts, pdb.WithMaxTrials(n))
	}
	if n := clampLimit(req.MaxMemoryBytes, s.cfg.MaxMemory); n > 0 {
		opts = append(opts, pdb.WithMaxMemory(n))
	}
	return opts
}

// requestTimeout resolves the effective timeout for a request.
func (s *Server) requestTimeout(req queryRequest) time.Duration {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()

	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "decode", fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Program == "" {
		s.fail(w, r, http.StatusBadRequest, "decode", errors.New("request has no program"))
		return
	}

	q, err := s.prepare(req.Program)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse", err)
		return
	}

	ctx := r.Context()
	if d := s.requestTimeout(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	var res *pdb.Result
	if req.Exact {
		res, err = q.EvalExact(ctx, s.buildOptions(req)...)
	} else {
		res, err = q.Eval(ctx, s.buildOptions(req)...)
	}
	if err != nil {
		var oe *pdb.OptionError
		var le *pdb.LimitError
		switch {
		case errors.As(err, &oe):
			s.fail(w, r, http.StatusBadRequest, "option", err)
		case errors.As(err, &le):
			s.fail(w, r, http.StatusUnprocessableEntity, "limit", err)
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, r, http.StatusGatewayTimeout, "timeout", err)
		case ctx.Err() != nil:
			// Client went away; nothing useful to write.
			s.failures.Add(1)
		default:
			s.fail(w, r, http.StatusInternalServerError, "internal", err)
		}
		return
	}

	// Stream the rows: one JSON object per line, flushed in batches, so
	// large results reach the client incrementally over chunked encoding.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(queryHeader{Columns: res.Columns(), Complete: res.Complete()})
	flush()

	cols := res.Columns()
	n := 0
	for row := range res.Rows() {
		vals := make(map[string]any, len(cols))
		for _, c := range cols {
			vals[c] = row.Value(c)
		}
		if err := enc.Encode(queryRow{
			Row:        vals,
			ErrorBound: row.ErrorBound(),
			Singular:   row.Singular(),
			Condition:  row.Condition(),
		}); err != nil {
			return // client went away mid-stream
		}
		n++
		s.rowsStreamed.Add(1)
		if n%64 == 0 {
			flush()
		}
	}
	st := res.Stats()
	_ = enc.Encode(queryTrailer{Stats: queryStats{
		Rows:          res.Len(),
		MaxErrorBound: res.MaxErrorBound(),
		FinalRounds:   st.FinalRounds,
		Restarts:      st.Restarts,
		SampledTrials: st.SampledTrials,
		ReusedTrials:  st.ReusedTrials,
		CacheHits:     st.CacheHits,
		ElapsedMS:     time.Since(start).Milliseconds(),
	}})
	flush()
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Engine engineStats `json:"engine"`
	Server serverStats `json:"server"`
}

type engineStats struct {
	Evals          int64 `json:"evals"`
	SampledTrials  int64 `json:"sampled_trials"`
	ReusedTrials   int64 `json:"reused_trials"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	CacheEvictions int64 `json:"cache_evictions"`
}

type serverStats struct {
	Requests     int64 `json:"requests"`
	Failures     int64 `json:"failures"`
	RowsStreamed int64 `json:"rows_streamed"`
	UptimeMS     int64 `json:"uptime_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Engine: engineStats{
			Evals:          es.Evals,
			SampledTrials:  es.SampledTrials,
			ReusedTrials:   es.ReusedTrials,
			CacheHits:      es.CacheHits,
			CacheMisses:    es.CacheMisses,
			CacheEntries:   es.CacheEntries,
			CacheEvictions: es.CacheEvictions,
		},
		Server: serverStats{
			Requests:     s.requests.Load(),
			Failures:     s.failures.Load(),
			RowsStreamed: s.rowsStreamed.Load(),
			UptimeMS:     time.Since(s.start).Milliseconds(),
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"ok\":true}\n")
}
