// Package server implements the HTTP front-end over the public pdb API:
// a long-lived query service whose concurrent requests share one
// pdb.Engine, so the engine's content-keyed estimator cache turns repeated
// and lineage-sharing queries from different clients into cache hits.
//
// Endpoints:
//
//	POST /v1/query   evaluate a UA program; streams NDJSON (one JSON object
//	                 per line: a header with the result schema, one object
//	                 per row with its error bound, then a stats trailer)
//	                 via chunked transfer encoding.
//	GET  /v1/stats   engine + server statistics (cache effectiveness,
//	                 request counters, admission state).
//	GET  /metrics    Prometheus text exposition (internal/metrics) —
//	                 request, latency, quota, admission, and engine series.
//	GET  /healthz    liveness probe.
//	GET  /readyz     readiness probe: 503 when every shard breaker is open
//	                 and local fallback is off (single-node deployments are
//	                 always ready).
//
// Per-request timeouts and resource limits map onto context deadlines and
// the pdb WithMaxTrials / WithMaxMemory options; server-level caps clamp
// whatever the client asks for. Multi-tenant deployments name tenants via
// a configurable request header and bound each tenant with a Quota
// (concurrent queries, sampled-trials rate, per-request caps); a global
// admission controller bounds in-flight evaluations behind a small wait
// queue, so saturation degrades into 429 + Retry-After instead of
// unbounded memory growth. The handler is safe for concurrent use —
// graceful shutdown is the listener owner's job (see cmd/pdbserve).
//
// The wire protocol is documented in docs/API.md and the operational
// surface (flags, metrics, alerting) in docs/OPERATIONS.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/pdb"
)

// Config configures a Server.
type Config struct {
	// Engine is the shared evaluation engine (required).
	Engine *pdb.Engine
	// DefaultTimeout bounds requests that do not set timeout_ms
	// themselves; 0 means no default bound.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts; 0 means unclamped.
	MaxTimeout time.Duration
	// MaxTrials / MaxMemory cap the per-request resource limits. A
	// client's tighter limit is honoured; a looser (or missing) one is
	// clamped to the cap. 0 disables the cap.
	MaxTrials int64
	MaxMemory int64
	// MaxWorkers caps the client-requested per-evaluation worker count
	// (results never depend on it — only goroutine fan-out does). 0
	// selects GOMAXPROCS; negative disables the cap.
	MaxWorkers int
	// SpillDir, when non-empty, turns each request's memory limit into
	// out-of-core execution (pdb.WithSpillDir): over-budget intermediates
	// shed to temp files under this directory and the evaluation completes
	// instead of failing with a memory limit error. Only effective for
	// requests that carry a memory limit (their own, or the MaxMemory cap).
	SpillDir string
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64

	// TenantHeader names the request header carrying the tenant name
	// (e.g. "X-Pdb-Tenant"). Empty disables tenant scoping: every request
	// shares the DefaultQuota bucket (if any).
	TenantHeader string
	// RequireTenant rejects requests without the tenant header with 403
	// when TenantHeader is set.
	RequireTenant bool
	// StrictTenants rejects tenants that have no entry in Quotas with
	// 403 — the allowlist mode. Without it, unknown tenants fall back to
	// DefaultQuota.
	StrictTenants bool
	// Quotas maps tenant names to their quotas.
	Quotas map[string]Quota
	// DefaultQuota applies to tenants without a Quotas entry (and, when
	// TenantHeader is empty, to all traffic). The zero value is
	// unlimited.
	DefaultQuota Quota

	// QuotaReloader, when set, produces a fresh quota table on demand:
	// ReloadQuotas (wired to SIGHUP and POST /v1/admin/reload by
	// cmd/pdbserve) calls it and — if the result validates — swaps the
	// live table atomically. In-flight requests keep the quota they
	// resolved at admission; the next request sees the new table. A
	// reloader error or invalid table leaves the previous quotas in
	// force.
	QuotaReloader func() (map[string]Quota, Quota, error)

	// MaxInFlight bounds globally concurrent evaluations; 0 disables
	// admission control.
	MaxInFlight int
	// AdmissionQueue is how many requests may wait for a slot beyond
	// MaxInFlight before new arrivals are shed immediately (default 0:
	// no queue).
	AdmissionQueue int
	// AdmissionWait bounds the time one request waits in the admission
	// queue (default 1s).
	AdmissionWait time.Duration

	// Registry receives the server's metric families; nil builds a
	// private registry (exposed on /metrics either way).
	Registry *metrics.Registry

	// Logger receives one line per failed request; nil disables logging.
	Logger *log.Logger
}

// Server is the http.Handler of the query service.
type Server struct {
	cfg Config
	eng *pdb.Engine
	mux *http.ServeMux

	met     *serverMetrics
	adm     *admission // nil when admission control is disabled
	tenants *tenantSet
	now     func() time.Time // injectable clock for quota tests

	// quotas/defaultQuota are the live quota table, initialized from the
	// Config and swappable at runtime via ReloadQuotas. Reads take the
	// RLock (two map lookups per request); swaps are rare.
	quotaMu      sync.RWMutex
	quotas       map[string]Quota
	defaultQuota Quota

	start time.Time

	requests     atomic.Int64
	failures     atomic.Int64
	rowsStreamed atomic.Int64

	// prepared caches parsed+validated programs by source text, so a hot
	// query skips the parser. Bounded; on overflow an arbitrary entry is
	// dropped (the cache is an accelerator, not a registry).
	prepMu   sync.Mutex
	prepared map[string]*pdb.Query
}

// maxPreparedQueries bounds the prepared-program cache.
const maxPreparedQueries = 256

// New builds a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if err := validateQuotas(cfg); err != nil {
		return nil, err
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s := &Server{
		cfg:          cfg,
		eng:          cfg.Engine,
		mux:          http.NewServeMux(),
		tenants:      newTenantSet(),
		now:          time.Now,
		start:        time.Now(),
		prepared:     make(map[string]*pdb.Query),
		quotas:       cfg.Quotas,
		defaultQuota: cfg.DefaultQuota,
	}
	if cfg.MaxInFlight > 0 {
		s.adm = newAdmission(cfg.MaxInFlight, cfg.AdmissionQueue, cfg.AdmissionWait)
	}
	s.met = newServerMetrics(cfg.Registry, s.eng, s.adm)
	s.mux.HandleFunc("POST /v1/query", s.instrument("/v1/query", s.handleQuery))
	s.mux.HandleFunc("POST /v1/admin/reload", s.instrument("/v1/admin/reload", s.handleReload))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("/v1/stats", s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.Handle("GET /metrics", s.instrumentHandler("/metrics", cfg.Registry.Handler()))
	return s, nil
}

// validateQuotas rejects nonsense quota configuration at construction.
func validateQuotas(cfg Config) error {
	if err := checkQuotaTable(cfg.Quotas, cfg.DefaultQuota); err != nil {
		return err
	}
	if (cfg.RequireTenant || cfg.StrictTenants || len(cfg.Quotas) > 0) && cfg.TenantHeader == "" {
		return errors.New("server: tenant quotas configured but Config.TenantHeader is empty")
	}
	return nil
}

// checkQuotaTable validates one quota table — shared by construction and
// runtime reloads, so a reload can never install bounds construction
// would have rejected.
func checkQuotaTable(quotas map[string]Quota, def Quota) error {
	check := func(name string, q Quota) error {
		if q.MaxConcurrent < 0 || q.TrialsPerSec < 0 || q.TrialsBurst < 0 ||
			q.MaxTrials < 0 || q.MaxMemory < 0 {
			return fmt.Errorf("server: quota %q has negative bounds: %+v", name, q)
		}
		return nil
	}
	if err := check("(default)", def); err != nil {
		return err
	}
	for name, q := range quotas {
		if err := check(name, q); err != nil {
			return err
		}
	}
	return nil
}

// ReloadQuotas swaps the live quota table for a fresh one from
// Config.QuotaReloader. Invalid tables (and reloader errors) are
// rejected and the previous quotas stay in force; a successful swap
// takes effect for the next admitted request — already-admitted requests
// keep the quota they resolved. cmd/pdbserve wires this to SIGHUP and
// the server itself to POST /v1/admin/reload.
func (s *Server) ReloadQuotas() error {
	if s.cfg.QuotaReloader == nil {
		s.met.quotaReloads.With("unconfigured").Inc()
		return errors.New("server: no QuotaReloader configured")
	}
	if err := s.reloadQuotas(); err != nil {
		s.met.quotaReloads.With("error").Inc()
		return err
	}
	s.met.quotaReloads.With("ok").Inc()
	return nil
}

func (s *Server) reloadQuotas() error {
	quotas, def, err := s.cfg.QuotaReloader()
	if err != nil {
		return fmt.Errorf("server: quota reload: %w", err)
	}
	if err := checkQuotaTable(quotas, def); err != nil {
		return err
	}
	if len(quotas) > 0 && s.cfg.TenantHeader == "" {
		return errors.New("server: reloaded per-tenant quotas but Config.TenantHeader is empty")
	}
	s.quotaMu.Lock()
	s.quotas, s.defaultQuota = quotas, def
	s.quotaMu.Unlock()
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusWriter records the response status for instrumentation — and
// whether anything was written at all, which decides if a recovered
// panic can still produce a typed 500 body — while passing Flush through
// to the underlying writer (the query stream needs it).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	// The embedded Write's implicit WriteHeader bypasses our override.
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-route request counter, latency
// histogram, in-flight gauge, and panic recovery. A panicking handler
// must not take the process down — it becomes a typed 500 (when no bytes
// have been written yet) and a pdb_http_panics_total increment. Slot
// bookkeeping (admission, tenant quotas) is deferred inside the handlers
// themselves, so it balances during the unwind and a panic can never
// leak capacity.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.httpInFlight.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler { // deliberate stream abort
					s.met.httpInFlight.Dec()
					panic(rec)
				}
				s.met.httpPanics.Inc()
				s.failures.Add(1)
				if s.cfg.Logger != nil {
					stack := make([]byte, 16<<10)
					stack = stack[:runtime.Stack(stack, false)]
					s.cfg.Logger.Printf("panic serving %s: %v\n%s", route, rec, stack)
				}
				sw.status = http.StatusInternalServerError
				if !sw.wrote {
					// Headers are still ours; send the typed error body.
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					_ = json.NewEncoder(sw).Encode(errorResponse{
						Error: "internal server error", Kind: "internal"})
				}
			}
			s.met.httpInFlight.Dec()
			s.met.requests.With(route, strconv.Itoa(sw.status)).Inc()
			s.met.duration.With(route).Observe(time.Since(start).Seconds())
		}()
		h(sw, r)
	}
}

func (s *Server) instrumentHandler(route string, h http.Handler) http.Handler {
	return s.instrument(route, h.ServeHTTP)
}

// queryRequest is the body of POST /v1/query. Zero values mean "use the
// server's defaults".
type queryRequest struct {
	// Program is the UA program to evaluate (required).
	Program string `json:"program"`

	// Accuracy: ε₀/δ for σ̂ decisions, (ε, δ) for standalone conf.
	Epsilon     float64 `json:"epsilon,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	ConfEpsilon float64 `json:"conf_epsilon,omitempty"`
	ConfDelta   float64 `json:"conf_delta,omitempty"`

	// Determinism and parallelism.
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Resource limits; the server's (and the tenant's) caps clamp them.
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	MaxTrials      int64 `json:"max_trials,omitempty"`
	MaxMemoryBytes int64 `json:"max_memory_bytes,omitempty"`

	// Exact switches to exact (#P) confidence computation.
	Exact bool `json:"exact,omitempty"`
	// NoResume disables estimator reuse for this request (ablation).
	NoResume bool `json:"no_resume,omitempty"`

	// Strata enables stratified Karp-Luby estimation with at most this
	// many clause-weight strata (pdb.WithStrata).
	Strata int `json:"strata,omitempty"`
	// Threshold stops sampling a conf tuple once its confidence interval
	// clears this value either way (pdb.WithThreshold) — an effort knob,
	// not a filter. Implies stratified estimation.
	Threshold float64 `json:"threshold,omitempty"`
	// TopK stops sampling a conf tuple once its membership in the k
	// highest-confidence tuples is settled (pdb.WithTopK). Implies
	// stratified estimation.
	TopK int `json:"top_k,omitempty"`
}

// errorResponse is the body of every non-200 response.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses.
	RetryAfterSeconds int64 `json:"retry_after_seconds,omitempty"`
}

// queryHeader is the first NDJSON line of a streamed result.
type queryHeader struct {
	Columns  []string `json:"columns"`
	Complete bool     `json:"complete"`
}

// queryRow is one streamed result row.
type queryRow struct {
	Row        map[string]any `json:"row"`
	ErrorBound float64        `json:"error_bound"`
	Singular   bool           `json:"singular,omitempty"`
	Condition  string         `json:"condition,omitempty"`
}

// queryTrailer is the final NDJSON line: evaluation statistics.
type queryTrailer struct {
	Stats queryStats `json:"stats"`
}

type queryStats struct {
	Rows          int     `json:"rows"`
	MaxErrorBound float64 `json:"max_error_bound"`
	FinalRounds   int64   `json:"final_rounds,omitempty"`
	Restarts      int     `json:"restarts,omitempty"`
	SampledTrials int64   `json:"sampled_trials"`
	ReusedTrials  int64   `json:"reused_trials"`
	CacheHits     int64   `json:"cache_hits"`
	Strata        int64   `json:"strata,omitempty"`
	EarlyStops    int64   `json:"early_stops,omitempty"`
	ExactFactored int64   `json:"exact_factored,omitempty"`
	SpilledBytes  int64   `json:"spilled_bytes,omitempty"`
	SpillFiles    int     `json:"spill_files,omitempty"`
	ElapsedMS     int64   `json:"elapsed_ms"`
}

// fail writes one JSON error (the response must not have been started).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, kind string, err error) {
	s.failWith(w, r, status, kind, err, 0)
}

// failRetry writes a 429-style JSON error with a Retry-After header.
func (s *Server) failRetry(w http.ResponseWriter, r *http.Request, status int, kind string, err error, retryAfter time.Duration) {
	s.failWith(w, r, status, kind, err, retryAfterSeconds(retryAfter))
}

func (s *Server) failWith(w http.ResponseWriter, r *http.Request, status int, kind string, err error, retryAfter int64) {
	s.failures.Add(1)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("%s %s: %s: %v", r.Method, r.URL.Path, kind, err)
	}
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfter, 10))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Kind: kind, RetryAfterSeconds: retryAfter})
}

// clampLimit combines a client limit with a server cap: the tightest
// positive bound wins.
func clampLimit(req, cap int64) int64 {
	switch {
	case cap <= 0:
		return req
	case req <= 0 || req > cap:
		return cap
	default:
		return req
	}
}

// tightestCap combines the server-wide cap with a tenant cap.
func tightestCap(server, tenant int64) int64 {
	switch {
	case server <= 0:
		return tenant
	case tenant <= 0:
		return server
	case tenant < server:
		return tenant
	default:
		return server
	}
}

// resolveTenant maps a request onto (tenant name, quota). ok=false means
// the request is out of scope and must be rejected with 403.
func (s *Server) resolveTenant(r *http.Request) (name string, q Quota, err error) {
	s.quotaMu.RLock()
	defer s.quotaMu.RUnlock()
	if s.cfg.TenantHeader == "" {
		return "", s.defaultQuota, nil
	}
	name = r.Header.Get(s.cfg.TenantHeader)
	if name == "" && s.cfg.RequireTenant {
		return "", Quota{}, fmt.Errorf("missing required tenant header %s", s.cfg.TenantHeader)
	}
	if q, ok := s.quotas[name]; ok {
		return name, q, nil
	}
	if s.cfg.StrictTenants {
		return name, Quota{}, fmt.Errorf("unknown tenant %q", name)
	}
	return name, s.defaultQuota, nil
}

// tenantLabel maps a tenant name onto a bounded metric label: configured
// tenants keep their name, the empty tenant is "default", anything else
// is "other" (so arbitrary header values cannot explode series
// cardinality).
func (s *Server) tenantLabel(name string) string {
	s.quotaMu.RLock()
	_, ok := s.quotas[name]
	s.quotaMu.RUnlock()
	if ok {
		return name
	}
	if name == "" {
		return "default"
	}
	return "other"
}

// prepare parses the program, serving hot programs from the bounded
// prepared-query cache.
func (s *Server) prepare(program string) (*pdb.Query, error) {
	s.prepMu.Lock()
	q, ok := s.prepared[program]
	s.prepMu.Unlock()
	if ok {
		return q, nil
	}
	q, err := s.eng.Prepare(program)
	if err != nil {
		return nil, err
	}
	s.prepMu.Lock()
	if len(s.prepared) >= maxPreparedQueries {
		for k := range s.prepared {
			delete(s.prepared, k)
			break
		}
	}
	s.prepared[program] = q
	s.prepMu.Unlock()
	return q, nil
}

// buildOptions maps a request onto pdb options (invalid values surface as
// *pdb.OptionError when the evaluation applies them). Resource limits are
// clamped by the tightest of the client's ask, the tenant's quota, and
// the server-wide cap.
func (s *Server) buildOptions(req queryRequest, q Quota) []pdb.Option {
	var opts []pdb.Option
	if req.Epsilon != 0 {
		opts = append(opts, pdb.WithEpsilon(req.Epsilon))
	}
	if req.Delta != 0 {
		opts = append(opts, pdb.WithDelta(req.Delta))
	}
	if req.ConfEpsilon != 0 || req.ConfDelta != 0 {
		opts = append(opts, pdb.WithConfBudget(req.ConfEpsilon, req.ConfDelta))
	}
	if req.Seed != 0 {
		opts = append(opts, pdb.WithSeed(req.Seed))
	}
	if req.Workers > 0 {
		// Clamp like the other client-controllable resource knobs: a
		// request may narrow its fan-out but never exceed the server cap
		// (an unset or non-positive count already means GOMAXPROCS).
		w := req.Workers
		if s.cfg.MaxWorkers > 0 && w > s.cfg.MaxWorkers {
			w = s.cfg.MaxWorkers
		}
		opts = append(opts, pdb.WithWorkers(w))
	}
	if req.NoResume {
		opts = append(opts, pdb.WithNoResume())
	}
	if req.Strata > 0 {
		opts = append(opts, pdb.WithStrata(req.Strata))
	}
	if req.Threshold > 0 {
		opts = append(opts, pdb.WithThreshold(req.Threshold))
	}
	if req.TopK > 0 {
		opts = append(opts, pdb.WithTopK(req.TopK))
	}
	if n := clampLimit(req.MaxTrials, tightestCap(s.cfg.MaxTrials, q.MaxTrials)); n > 0 {
		opts = append(opts, pdb.WithMaxTrials(n))
	}
	if n := clampLimit(req.MaxMemoryBytes, tightestCap(s.cfg.MaxMemory, q.MaxMemory)); n > 0 {
		opts = append(opts, pdb.WithMaxMemory(n))
		if s.cfg.SpillDir != "" {
			opts = append(opts, pdb.WithSpillDir(s.cfg.SpillDir))
		}
	}
	return opts
}

// requestTimeout resolves the effective timeout for a request.
func (s *Server) requestTimeout(req queryRequest) time.Duration {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (d <= 0 || d > s.cfg.MaxTimeout) {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()

	// Tenant scoping first: it needs only headers, so out-of-scope and
	// over-quota requests are shed before any body parsing or engine work.
	tenant, quota, terr := s.resolveTenant(r)
	tlabel := s.tenantLabel(tenant)
	s.met.tenantRequests.With(tlabel).Inc()
	if terr != nil {
		s.met.tenantRejections.With(tlabel, "forbidden").Inc()
		s.fail(w, r, http.StatusForbidden, "forbidden", terr)
		return
	}
	releaseTenant, reason, retryAfter, ok := s.tenants.acquire(tenant, quota, s.now())
	if !ok {
		s.met.tenantRejections.With(tlabel, reason).Inc()
		s.failRetry(w, r, http.StatusTooManyRequests, "overloaded",
			fmt.Errorf("tenant %q over %s quota", tenant, reason), retryAfter)
		return
	}
	defer releaseTenant()

	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "decode", fmt.Errorf("decoding request body: %w", err))
		return
	}
	if req.Program == "" {
		s.fail(w, r, http.StatusBadRequest, "decode", errors.New("request has no program"))
		return
	}

	q, err := s.prepare(req.Program)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "parse", err)
		return
	}

	ctx := r.Context()
	if d := s.requestTimeout(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// Global admission: bound in-flight evaluations, queue briefly, shed
	// the rest — a saturated engine must degrade with 429, not OOM.
	releaseSlot, reason, waited, ok := s.adm.acquire(ctx)
	if waited > 0 || !ok {
		s.met.admissionWait.Observe(waited.Seconds())
	}
	if !ok {
		s.met.admissionRejects.With(reason).Inc()
		if reason == "canceled" {
			// Client went away while queued; nothing useful to write.
			s.failures.Add(1)
			return
		}
		s.failRetry(w, r, http.StatusTooManyRequests, "overloaded",
			fmt.Errorf("server saturated (admission %s)", reason), s.cfg.AdmissionWait)
		return
	}
	defer releaseSlot()

	var res *pdb.Result
	if req.Exact {
		res, err = q.EvalExact(ctx, s.buildOptions(req, quota)...)
	} else {
		res, err = q.Eval(ctx, s.buildOptions(req, quota)...)
	}
	if err != nil {
		var oe *pdb.OptionError
		var le *pdb.LimitError
		switch {
		case errors.As(err, &oe):
			s.fail(w, r, http.StatusBadRequest, "option", err)
		case errors.As(err, &le):
			s.met.limitErrors.With(le.Resource).Inc()
			s.fail(w, r, http.StatusUnprocessableEntity, "limit", err)
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, r, http.StatusGatewayTimeout, "timeout", err)
		case ctx.Err() != nil:
			// Client went away; nothing useful to write.
			s.failures.Add(1)
		default:
			s.fail(w, r, http.StatusInternalServerError, "internal", err)
		}
		return
	}
	st := res.Stats()
	s.tenants.charge(tenant, quota, st.SampledTrials, s.now())

	// Stream the rows: one JSON object per line, flushed in batches, so
	// large results reach the client incrementally over chunked encoding.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(queryHeader{Columns: res.Columns(), Complete: res.Complete()})
	flush()

	cols := res.Columns()
	n := 0
	for row := range res.Rows() {
		vals := make(map[string]any, len(cols))
		for _, c := range cols {
			vals[c] = row.Value(c)
		}
		if err := enc.Encode(queryRow{
			Row:        vals,
			ErrorBound: row.ErrorBound(),
			Singular:   row.Singular(),
			Condition:  row.Condition(),
		}); err != nil {
			return // client went away mid-stream
		}
		n++
		s.rowsStreamed.Add(1)
		s.met.rowsStreamed.Inc()
		if n%64 == 0 {
			flush()
		}
	}
	_ = enc.Encode(queryTrailer{Stats: queryStats{
		Rows:          res.Len(),
		MaxErrorBound: res.MaxErrorBound(),
		FinalRounds:   st.FinalRounds,
		Restarts:      st.Restarts,
		SampledTrials: st.SampledTrials,
		ReusedTrials:  st.ReusedTrials,
		CacheHits:     st.CacheHits,
		Strata:        st.Strata,
		EarlyStops:    st.EarlyStops,
		ExactFactored: st.ExactFactored,
		SpilledBytes:  st.SpilledBytes,
		SpillFiles:    st.SpillFiles,
		ElapsedMS:     time.Since(start).Milliseconds(),
	}})
	flush()
}

// handleReload serves POST /v1/admin/reload: re-run the configured
// QuotaReloader and swap the live quota table. 501 when no reloader is
// configured, 502 when it fails (previous quotas stay in force).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.QuotaReloader == nil {
		s.met.quotaReloads.With("unconfigured").Inc()
		s.fail(w, r, http.StatusNotImplemented, "reload", errors.New("no quota reloader configured"))
		return
	}
	if err := s.ReloadQuotas(); err != nil {
		s.fail(w, r, http.StatusBadGateway, "reload", err)
		return
	}
	s.quotaMu.RLock()
	n := len(s.quotas)
	s.quotaMu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "tenants": n})
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Engine    engineStats    `json:"engine"`
	Server    serverStats    `json:"server"`
	Admission admissionStats `json:"admission"`
	// Cluster is present only on a sharded deployment.
	Cluster *clusterStats `json:"cluster,omitempty"`
}

type engineStats struct {
	Evals          int64 `json:"evals"`
	InFlight       int64 `json:"in_flight"`
	SampledTrials  int64 `json:"sampled_trials"`
	ReusedTrials   int64 `json:"reused_trials"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	CacheCapacity  int   `json:"cache_capacity"`
	CacheEvictions int64 `json:"cache_evictions"`
	LimitTrips     int64 `json:"limit_trips"`
	EarlyStops     int64 `json:"early_stops"`
	ExactFactored  int64 `json:"exact_factored"`
}

type serverStats struct {
	Requests     int64 `json:"requests"`
	Failures     int64 `json:"failures"`
	RowsStreamed int64 `json:"rows_streamed"`
	UptimeMS     int64 `json:"uptime_ms"`
}

type admissionStats struct {
	Enabled     bool `json:"enabled"`
	MaxInFlight int  `json:"max_in_flight,omitempty"`
	InFlight    int  `json:"in_flight"`
	Waiting     int  `json:"waiting"`
}

type clusterStats struct {
	Batches        int64              `json:"batches"`
	MergeNanos     int64              `json:"merge_nanos"`
	Failovers      int64              `json:"failovers"`
	Hedges         int64              `json:"hedges"`
	HedgeWins      int64              `json:"hedge_wins"`
	LocalFallbacks int64              `json:"local_fallbacks"`
	Probes         int64              `json:"probes"`
	ProbeFailures  int64              `json:"probe_failures"`
	LocalFallback  bool               `json:"local_fallback"`
	Shards         []clusterShardJSON `json:"shards"`
	ShardsTotal    int                `json:"shards_total"`
	ShardsDown     int                `json:"shards_down"`
}

type clusterShardJSON struct {
	Addr      string `json:"addr"`
	Healthy   bool   `json:"healthy"`
	Breaker   string `json:"breaker"`
	RPCs      int64  `json:"rpcs"`
	Failures  int64  `json:"failures"`
	Retries   int64  `json:"retries"`
	BytesSent int64  `json:"bytes_sent"`
	BytesRecv int64  `json:"bytes_recv"`
	LastError string `json:"last_error,omitempty"`
}

// clusterSection maps the engine's cluster snapshot onto the stats body;
// nil on a single-node deployment.
func clusterSection(cs *pdb.ClusterStats) *clusterStats {
	if cs == nil {
		return nil
	}
	out := &clusterStats{
		Batches:        cs.Batches,
		MergeNanos:     cs.MergeNanos,
		Failovers:      cs.Failovers,
		Hedges:         cs.Hedges,
		HedgeWins:      cs.HedgeWins,
		LocalFallbacks: cs.LocalFallbacks,
		Probes:         cs.Probes,
		ProbeFailures:  cs.ProbeFailures,
		LocalFallback:  cs.LocalFallback,
		ShardsTotal:    len(cs.Shards),
	}
	for _, sh := range cs.Shards {
		if !sh.Healthy {
			out.ShardsDown++
		}
		out.Shards = append(out.Shards, clusterShardJSON{
			Addr:      sh.Addr,
			Healthy:   sh.Healthy,
			Breaker:   sh.Breaker,
			RPCs:      sh.RPCs,
			Failures:  sh.Failures,
			Retries:   sh.Retries,
			BytesSent: sh.BytesSent,
			BytesRecv: sh.BytesRecv,
			LastError: sh.LastError,
		})
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(statsResponse{
		Engine: engineStats{
			Evals:          es.Evals,
			InFlight:       es.InFlight,
			SampledTrials:  es.SampledTrials,
			ReusedTrials:   es.ReusedTrials,
			CacheHits:      es.CacheHits,
			CacheMisses:    es.CacheMisses,
			CacheEntries:   es.CacheEntries,
			CacheCapacity:  es.CacheCapacity,
			CacheEvictions: es.CacheEvictions,
			LimitTrips:     es.LimitTrips,
			EarlyStops:     es.EarlyStops,
			ExactFactored:  es.ExactFactored,
		},
		Server: serverStats{
			Requests:     s.requests.Load(),
			Failures:     s.failures.Load(),
			RowsStreamed: s.rowsStreamed.Load(),
			UptimeMS:     time.Since(s.start).Milliseconds(),
		},
		Admission: admissionStats{
			Enabled:     s.adm != nil,
			MaxInFlight: s.cfg.MaxInFlight,
			InFlight:    s.adm.inFlight(),
			Waiting:     s.adm.waitingNow(),
		},
		Cluster: clusterSection(es.Cluster),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = io.WriteString(w, "{\"ok\":true}\n")
}

// readyzResponse is the body of GET /readyz.
type readyzResponse struct {
	Ready         bool `json:"ready"`
	Degraded      bool `json:"degraded,omitempty"`
	ShardsTotal   int  `json:"shards_total,omitempty"`
	ShardsDown    int  `json:"shards_down,omitempty"`
	LocalFallback bool `json:"local_fallback,omitempty"`
}

// handleReadyz is the load-balancer readiness probe. Liveness (/healthz)
// never flips on shard trouble — restarting the coordinator won't revive
// a dead shard — but readiness does: when every shard breaker is open
// and local fallback is off, new queries can only fail, so the node asks
// to be drained with a 503. A partially-degraded cluster stays ready
// (failover reroutes around the tripped shards) and reports degraded
// instead.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyzResponse{Ready: s.eng.ClusterReady()}
	if cs := s.eng.ClusterStats(); cs != nil {
		resp.ShardsTotal = len(cs.Shards)
		for _, sh := range cs.Shards {
			if sh.Breaker == "open" {
				resp.ShardsDown++
			}
		}
		resp.Degraded = resp.ShardsDown > 0
		resp.LocalFallback = cs.LocalFallback
	}
	w.Header().Set("Content-Type", "application/json")
	if !resp.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(resp)
}
