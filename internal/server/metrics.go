package server

import (
	"repro/internal/metrics"
	"repro/pdb"
)

// serverMetrics holds every instrument the service exports on /metrics.
// HTTP- and quota-level series are pushed from the handlers; engine-level
// series are pulled from pdb.Engine.Stats at scrape time, so the scrape
// always reflects the engine's own cumulative accounting (including work
// done before the metrics endpoint was first hit).
//
// The full series reference — names, types, labels, meanings, suggested
// alerts — lives in docs/OPERATIONS.md; keep the two in sync.
type serverMetrics struct {
	reg *metrics.Registry

	requests     *metrics.CounterVec   // pdb_http_requests_total{route,status}
	duration     *metrics.HistogramVec // pdb_http_request_duration_seconds{route}
	httpInFlight *metrics.Gauge        // pdb_http_in_flight_requests
	rowsStreamed *metrics.Counter      // pdb_http_rows_streamed_total
	httpPanics   *metrics.Counter      // pdb_http_panics_total

	limitErrors      *metrics.CounterVec // pdb_limit_errors_total{resource}
	tenantRequests   *metrics.CounterVec // pdb_tenant_requests_total{tenant}
	tenantRejections *metrics.CounterVec // pdb_tenant_rejections_total{tenant,reason}
	admissionRejects *metrics.CounterVec // pdb_admission_rejected_total{reason}
	admissionWait    *metrics.Histogram  // pdb_admission_wait_seconds
	quotaReloads     *metrics.CounterVec // pdb_quota_reloads_total{outcome}
}

// newServerMetrics registers the service's metric families on reg and
// binds the pull-style engine/admission gauges.
func newServerMetrics(reg *metrics.Registry, eng *pdb.Engine, adm *admission) *serverMetrics {
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("pdb_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "status"),
		duration: reg.HistogramVec("pdb_http_request_duration_seconds",
			"HTTP request latency, by route.", nil, "route"),
		httpInFlight: reg.Gauge("pdb_http_in_flight_requests",
			"HTTP requests currently being served."),
		rowsStreamed: reg.Counter("pdb_http_rows_streamed_total",
			"Result rows streamed to clients."),
		httpPanics: reg.Counter("pdb_http_panics_total",
			"HTTP handlers that panicked and were recovered into a typed 500."),
		limitErrors: reg.CounterVec("pdb_limit_errors_total",
			"Evaluations aborted by a per-request resource limit, by resource (trials, memory).", "resource"),
		tenantRequests: reg.CounterVec("pdb_tenant_requests_total",
			"Query requests per tenant (configured tenants by name; others as \"other\", the empty tenant as \"default\").", "tenant"),
		tenantRejections: reg.CounterVec("pdb_tenant_rejections_total",
			"Requests rejected by tenant scoping or quotas, by reason (forbidden, concurrency, rate).", "tenant", "reason"),
		admissionRejects: reg.CounterVec("pdb_admission_rejected_total",
			"Evaluations shed by global admission control, by reason (queue_full, wait_timeout, canceled).", "reason"),
		admissionWait: reg.Histogram("pdb_admission_wait_seconds",
			"Time evaluations spent queued in admission control before starting.", nil),
		quotaReloads: reg.CounterVec("pdb_quota_reloads_total",
			"Runtime quota-table reloads (SIGHUP or POST /v1/admin/reload), by outcome (ok, error, unconfigured).", "outcome"),
	}

	// Engine counters pulled at scrape time from the engine's cumulative
	// stats (one Stats snapshot per family keeps each sample internally
	// consistent; cross-family skew within one scrape is harmless).
	reg.CounterFunc("pdb_engine_evals_total",
		"Completed evaluations on the shared engine.",
		func() float64 { return float64(eng.Stats().Evals) })
	reg.CounterFunc("pdb_engine_sampled_trials_total",
		"Karp-Luby trials actually sampled across all evaluations.",
		func() float64 { return float64(eng.Stats().SampledTrials) })
	reg.CounterFunc("pdb_engine_reused_trials_total",
		"Trials served from cached estimator snapshots instead of being re-sampled.",
		func() float64 { return float64(eng.Stats().ReusedTrials) })
	reg.CounterFunc("pdb_engine_cache_hits_total",
		"Estimation tasks resumed from the content-keyed estimator cache.",
		func() float64 { return float64(eng.Stats().CacheHits) })
	reg.CounterFunc("pdb_engine_cache_misses_total",
		"Estimator-cache lookups that found nothing resumable.",
		func() float64 { return float64(eng.Stats().CacheMisses) })
	reg.CounterFunc("pdb_engine_cache_evictions_total",
		"Estimator-cache entries evicted by the LRU bound.",
		func() float64 { return float64(eng.Stats().CacheEvictions) })
	reg.CounterFunc("pdb_engine_limit_trips_total",
		"Evaluations aborted by a per-query resource limit, as counted by the engine.",
		func() float64 { return float64(eng.Stats().LimitTrips) })
	reg.CounterFunc("pdb_engine_early_stops_total",
		"Estimation tasks settled before their full trial budget (threshold/top-k decisions or empirical-Bernstein convergence).",
		func() float64 { return float64(eng.Stats().EarlyStops) })
	reg.CounterFunc("pdb_engine_exact_factored_total",
		"Independent lineage subformulas computed exactly by the factoring pre-pass instead of sampled.",
		func() float64 { return float64(eng.Stats().ExactFactored) })
	reg.GaugeFunc("pdb_engine_cache_entries",
		"Estimator-cache entries currently held.",
		func() float64 { return float64(eng.Stats().CacheEntries) })
	reg.GaugeFunc("pdb_engine_cache_capacity",
		"Configured estimator-cache entry bound (0 = unbounded).",
		func() float64 { return float64(eng.Stats().CacheCapacity) })
	reg.GaugeFunc("pdb_engine_in_flight_evaluations",
		"Evaluations currently running on the engine.",
		func() float64 { return float64(eng.Stats().InFlight) })

	// Cluster series exist only on a sharded deployment: per-shard RPC,
	// retry, failure, and traffic totals plus a health gauge, all pulled
	// from the coordinator's counters at scrape time, labelled by shard
	// address (the peer set is fixed at boot, so cardinality is bounded).
	if eng.Stats().Cluster != nil {
		perShard := func(read func(pdb.ClusterShardStatus) float64) func() []metrics.LabeledValue {
			return func() []metrics.LabeledValue {
				cs := eng.ClusterStats()
				if cs == nil {
					return nil
				}
				out := make([]metrics.LabeledValue, len(cs.Shards))
				for i, sh := range cs.Shards {
					out[i] = metrics.LabeledValue{Labels: []string{sh.Addr}, Value: read(sh)}
				}
				return out
			}
		}
		shard := []string{"shard"}
		reg.CounterVecFunc("pdb_cluster_shard_rpcs_total",
			"Scatter RPC attempts per shard.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 { return float64(s.RPCs) }))
		reg.CounterVecFunc("pdb_cluster_shard_retries_total",
			"Retried scatter RPC attempts per shard.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 { return float64(s.Retries) }))
		reg.CounterVecFunc("pdb_cluster_shard_failures_total",
			"Scatter RPCs that exhausted every retry, per shard.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 { return float64(s.Failures) }))
		reg.CounterVecFunc("pdb_cluster_shard_sent_bytes_total",
			"Bytes sent to each shard.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 { return float64(s.BytesSent) }))
		reg.CounterVecFunc("pdb_cluster_shard_recv_bytes_total",
			"Bytes received from each shard.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 { return float64(s.BytesRecv) }))
		reg.GaugeVecFunc("pdb_cluster_shard_healthy",
			"1 when the shard's most recent RPC succeeded, else 0.", shard,
			perShard(func(s pdb.ClusterShardStatus) float64 {
				if s.Healthy {
					return 1
				}
				return 0
			}))
		reg.GaugeVecFunc("pdb_cluster_shard_breaker_state",
			"Circuit-breaker state per shard: 0 closed, 1 half-open, 2 open.", shard,
			func() []metrics.LabeledValue {
				cs := eng.ClusterStats()
				states := eng.ClusterBreakerStates()
				if cs == nil || len(states) != len(cs.Shards) {
					return nil
				}
				out := make([]metrics.LabeledValue, len(cs.Shards))
				for i, sh := range cs.Shards {
					out[i] = metrics.LabeledValue{Labels: []string{sh.Addr}, Value: float64(states[i])}
				}
				return out
			})
		reg.CounterFunc("pdb_cluster_batches_total",
			"Scatter-gather round trips across the shard cluster.",
			func() float64 {
				if cs := eng.ClusterStats(); cs != nil {
					return float64(cs.Batches)
				}
				return 0
			})
		reg.CounterFunc("pdb_cluster_merge_seconds_total",
			"Cumulative time the coordinator spent merging gathered shard counts.",
			func() float64 {
				if cs := eng.ClusterStats(); cs != nil {
					return float64(cs.MergeNanos) / 1e9
				}
				return 0
			})
		clusterCounter := func(read func(*pdb.ClusterStats) int64) func() float64 {
			return func() float64 {
				if cs := eng.ClusterStats(); cs != nil {
					return float64(read(cs))
				}
				return 0
			}
		}
		reg.CounterFunc("pdb_cluster_failovers_total",
			"Chunk ranges re-dispatched to a surviving shard (or locally) after their owner exhausted retries.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.Failovers }))
		reg.CounterFunc("pdb_cluster_hedges_total",
			"Hedged duplicate dispatches launched against straggling shards.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.Hedges }))
		reg.CounterFunc("pdb_cluster_hedge_wins_total",
			"Hedged dispatches whose response arrived before the original's.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.HedgeWins }))
		reg.CounterFunc("pdb_cluster_local_fallbacks_total",
			"Chunk ranges sampled on the coordinator itself because no healthy shard remained.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.LocalFallbacks }))
		reg.CounterFunc("pdb_cluster_probes_total",
			"Half-open breaker probes sent to tripped shards.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.Probes }))
		reg.CounterFunc("pdb_cluster_probe_failures_total",
			"Breaker probes that failed, keeping the shard quarantined.",
			clusterCounter(func(cs *pdb.ClusterStats) int64 { return cs.ProbeFailures }))
	}

	reg.GaugeFunc("pdb_admission_in_flight",
		"Evaluations currently holding an admission slot (0 when admission control is disabled).",
		func() float64 { return float64(adm.inFlight()) })
	reg.GaugeFunc("pdb_admission_waiting",
		"Requests currently queued in admission control.",
		func() float64 { return float64(adm.waitingNow()) })
	return m
}
