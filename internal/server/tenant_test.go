package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const tenantHdr = "X-Pdb-Tenant"

// postAs sends one query as the given tenant and returns status, decoded
// error (when non-200), and the Retry-After header.
func postAs(t *testing.T, ts *httptest.Server, tenant, body string) (int, errorResponse, string) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHdr, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decoding error body: %v", err)
		}
	} else {
		// Drain the stream so the handler finishes (and charges quotas).
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
	}
	return resp.StatusCode, er, resp.Header.Get("Retry-After")
}

// TestTenantForbidden covers the 403 scoping paths: a required-but-missing
// tenant header and an unknown tenant in strict (allowlist) mode.
func TestTenantForbidden(t *testing.T) {
	srv := testServer(t, Config{
		TenantHeader:  tenantHdr,
		RequireTenant: true,
		StrictTenants: true,
		Quotas:        map[string]Quota{"alpha": {}},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	status, er, _ := postAs(t, ts, "", body)
	if status != http.StatusForbidden || er.Kind != "forbidden" {
		t.Errorf("missing header: status %d kind %q, want 403 forbidden", status, er.Kind)
	}
	status, er, _ = postAs(t, ts, "stranger", body)
	if status != http.StatusForbidden || er.Kind != "forbidden" {
		t.Errorf("unknown tenant: status %d kind %q, want 403 forbidden", status, er.Kind)
	}
	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Errorf("allowed tenant: status %d, want 200", status)
	}
}

// TestTenantRateQuotaIsolation is the acceptance-criteria scenario: a
// tenant that overdraws its trials/sec bucket gets 429 + Retry-After
// while another tenant's queries keep succeeding.
func TestTenantRateQuotaIsolation(t *testing.T) {
	srv := testServer(t, Config{
		TenantHeader: tenantHdr,
		Quotas: map[string]Quota{
			"bursty": {TrialsPerSec: 0.5, TrialsBurst: 1},
			"calm":   {},
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	// First query is admitted (the bucket may overdraw once) and leaves
	// the tenant deep in debt — it sampled thousands of trials against a
	// 0.5/s refill.
	if status, _, _ := postAs(t, ts, "bursty", body); status != http.StatusOK {
		t.Fatalf("first bursty query: status %d, want 200", status)
	}
	status, er, retry := postAs(t, ts, "bursty", body)
	if status != http.StatusTooManyRequests || er.Kind != "overloaded" {
		t.Fatalf("second bursty query: status %d kind %q, want 429 overloaded", status, er.Kind)
	}
	if n, err := strconv.ParseInt(retry, 10, 64); err != nil || n < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", retry)
	}
	if er.RetryAfterSeconds < 1 {
		t.Errorf("retry_after_seconds = %d, want >= 1", er.RetryAfterSeconds)
	}

	// The other tenant is untouched; so is a tenant-less request (which
	// falls back to the unlimited default quota).
	for _, tenant := range []string{"calm", ""} {
		if status, _, _ := postAs(t, ts, tenant, body); status != http.StatusOK {
			t.Errorf("tenant %q during bursty's debt: status %d, want 200", tenant, status)
		}
	}
}

// TestTenantConcurrencyQuota saturates one tenant's concurrency slot
// (white-box, so the test is deterministic) and checks the 429 plus the
// other tenant's isolation.
func TestTenantConcurrencyQuota(t *testing.T) {
	quotas := map[string]Quota{
		"small": {MaxConcurrent: 1},
		"big":   {MaxConcurrent: 8},
	}
	srv := testServer(t, Config{TenantHeader: tenantHdr, Quotas: quotas})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	release, reason, _, ok := srv.tenants.acquire("small", quotas["small"], time.Now())
	if !ok {
		t.Fatalf("setup acquire failed: %s", reason)
	}
	status, er, retry := postAs(t, ts, "small", body)
	if status != http.StatusTooManyRequests || er.Kind != "overloaded" || retry == "" {
		t.Errorf("saturated tenant: status %d kind %q retry %q, want 429 overloaded", status, er.Kind, retry)
	}
	if status, _, _ := postAs(t, ts, "big", body); status != http.StatusOK {
		t.Errorf("other tenant while small is saturated: status %d, want 200", status)
	}
	release()
	if status, _, _ := postAs(t, ts, "small", body); status != http.StatusOK {
		t.Errorf("small after release: status %d, want 200", status)
	}
}

// TestAdmissionSaturation covers the global admission controller: with
// the only slot held and no queue, requests shed immediately with 429 +
// Retry-After; with the slot free again they succeed.
func TestAdmissionSaturation(t *testing.T) {
	srv := testServer(t, Config{MaxInFlight: 1, AdmissionWait: 50 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	release, _, _, ok := srv.adm.acquire(context.Background())
	if !ok {
		t.Fatal("setup acquire failed")
	}
	status, er, retry := postAs(t, ts, "", body)
	if status != http.StatusTooManyRequests || er.Kind != "overloaded" || retry == "" {
		t.Errorf("saturated: status %d kind %q retry %q, want 429 overloaded + Retry-After", status, er.Kind, retry)
	}
	release()
	if status, _, _ := postAs(t, ts, "", body); status != http.StatusOK {
		t.Errorf("after release: status %d, want 200", status)
	}
}

// TestAdmissionQueueWaits covers the wait-queue path: a queued request is
// admitted once the slot frees within the wait window.
func TestAdmissionQueueWaits(t *testing.T) {
	srv := testServer(t, Config{MaxInFlight: 1, AdmissionQueue: 1, AdmissionWait: 5 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	release, _, _, ok := srv.adm.acquire(context.Background())
	if !ok {
		t.Fatal("setup acquire failed")
	}
	done := make(chan int, 1)
	go func() {
		status, _, _ := postAs(t, ts, "", body)
		done <- status
	}()
	// Wait until the request is queued, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.waitingNow() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.waitingNow() != 1 {
		t.Fatal("request never queued")
	}
	release()
	if status := <-done; status != http.StatusOK {
		t.Errorf("queued request: status %d, want 200", status)
	}
}

// expositionLine matches one valid text-exposition sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

// scrape fetches /metrics, validates every line parses as text
// exposition format, and returns the samples.
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsEndpoint is the acceptance-criteria check for /metrics:
// valid Prometheus text exposition whose request, trial, and cache series
// move when queries run.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t, Config{TenantHeader: tenantHdr, Quotas: map[string]Quota{"alpha": {}}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)

	before := scrape(t, ts)
	if before[`pdb_http_requests_total{route="/v1/query",status="200"}`] != 0 {
		t.Errorf("fresh server reports served queries: %v", before)
	}

	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Fatalf("query failed: %d", status)
	}
	mid := scrape(t, ts)
	checks := []struct {
		key  string
		want float64
	}{
		{`pdb_http_requests_total{route="/v1/query",status="200"}`, 1},
		{`pdb_http_request_duration_seconds_count{route="/v1/query"}`, 1},
		{`pdb_tenant_requests_total{tenant="alpha"}`, 1},
		{`pdb_http_rows_streamed_total`, 4},
		{`pdb_engine_evals_total`, 1},
	}
	for _, c := range checks {
		if mid[c.key] != c.want {
			t.Errorf("after one query: %s = %v, want %v", c.key, mid[c.key], c.want)
		}
	}
	if mid["pdb_engine_sampled_trials_total"] <= 0 {
		t.Errorf("sampled trials not exported: %v", mid["pdb_engine_sampled_trials_total"])
	}
	if mid["pdb_engine_cache_entries"] <= 0 || mid["pdb_engine_cache_capacity"] <= 0 {
		t.Errorf("cache gauges: entries=%v capacity=%v",
			mid["pdb_engine_cache_entries"], mid["pdb_engine_cache_capacity"])
	}

	// A repeated query moves the reuse counters and the request counter.
	if status, _, _ := postAs(t, ts, "alpha", body); status != http.StatusOK {
		t.Fatalf("second query failed: %d", status)
	}
	after := scrape(t, ts)
	if after[`pdb_http_requests_total{route="/v1/query",status="200"}`] != 2 {
		t.Errorf("request counter did not move: %v", after[`pdb_http_requests_total{route="/v1/query",status="200"}`])
	}
	if after["pdb_engine_reused_trials_total"] <= 0 || after["pdb_engine_cache_hits_total"] <= 0 {
		t.Errorf("reuse series did not move: reused=%v hits=%v",
			after["pdb_engine_reused_trials_total"], after["pdb_engine_cache_hits_total"])
	}

	// A limit abort shows up on the limit series (and as a 422).
	limited := fmt.Sprintf(`{"program": %q, "max_trials": 10, "conf_epsilon": 0.01, "conf_delta": 0.01, "no_resume": true}`, testProgram)
	if status, _, _ := postAs(t, ts, "alpha", limited); status != http.StatusUnprocessableEntity {
		t.Fatalf("limited query: status %d, want 422", status)
	}
	final := scrape(t, ts)
	if final[`pdb_limit_errors_total{resource="trials"}`] != 1 {
		t.Errorf("limit error not counted: %v", final[`pdb_limit_errors_total{resource="trials"}`])
	}
	if final[`pdb_http_requests_total{route="/v1/query",status="422"}`] != 1 {
		t.Errorf("422 not labelled: %v", final)
	}
	if final["pdb_engine_limit_trips_total"] != 1 {
		t.Errorf("engine limit trips = %v, want 1", final["pdb_engine_limit_trips_total"])
	}
}

// TestQuotaHammerRace hammers the handler from many goroutines across
// two quota-bounded tenants plus admission control — run under -race this
// vets the tenant buckets, the admission queue, and the metrics write
// path together. Outcomes must be only 200 or 429, and both tenants must
// recover to 200 afterwards.
func TestQuotaHammerRace(t *testing.T) {
	srv := testServer(t, Config{
		DefaultTimeout: 30 * time.Second,
		TenantHeader:   tenantHdr,
		Quotas: map[string]Quota{
			"a": {MaxConcurrent: 2, TrialsPerSec: 1e9},
			"b": {MaxConcurrent: 8},
		},
		MaxInFlight:    4,
		AdmissionQueue: 16,
		AdmissionWait:  10 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const goroutines, iters = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := []string{"a", "b"}[g%2]
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"program": %q, "seed": %d}`, testProgram, i%2+1)
				req, err := http.NewRequest("POST", ts.URL+"/v1/query", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set(tenantHdr, tenant)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				sc := bufio.NewScanner(resp.Body)
				for sc.Scan() {
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("tenant %s: status %d", tenant, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	body := fmt.Sprintf(`{"program": %q, "seed": 1}`, testProgram)
	for _, tenant := range []string{"a", "b"} {
		if status, _, _ := postAs(t, ts, tenant, body); status != http.StatusOK {
			t.Errorf("tenant %s after hammer: status %d, want 200", tenant, status)
		}
	}
	// The exposition page stays parseable after concurrent writes.
	scrape(t, ts)
}

// TestQuotaConfigValidation pins construction-time rejection of nonsense
// quota configs.
func TestQuotaConfigValidation(t *testing.T) {
	eng := testServer(t, Config{}).eng
	if _, err := New(Config{Engine: eng, Quotas: map[string]Quota{"a": {MaxConcurrent: -1}}, TenantHeader: tenantHdr}); err == nil {
		t.Error("negative quota accepted")
	}
	if _, err := New(Config{Engine: eng, Quotas: map[string]Quota{"a": {}}}); err == nil {
		t.Error("quotas without a tenant header accepted")
	}
}
