package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pdb"
)

// testServer builds a server over a small tuple-independent database with
// multi-clause lineage after projection.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	rows := [][]any{}
	probs := []float64{}
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			rows = append(rows, []any{fmt.Sprintf("s%d", s), r})
			probs = append(probs, 0.3)
		}
	}
	db, err := pdb.NewBuilder().
		Independent("Obs", []string{"Sensor", "Reading"}, rows, probs).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := db.Engine()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

const testProgram = `conf as P (project[Sensor](Obs));`

// postQuery sends one query and parses the NDJSON stream.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, queryHeader, []queryRow, queryTrailer) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hdr queryHeader
	var rows []queryRow
	var tr queryTrailer
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, hdr, rows, tr
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		switch {
		case line == 0:
			if err := json.Unmarshal(raw, &hdr); err != nil {
				t.Fatalf("header line: %v", err)
			}
		case bytes.Contains(raw, []byte(`"stats"`)):
			if err := json.Unmarshal(raw, &tr); err != nil {
				t.Fatalf("trailer line: %v", err)
			}
		default:
			var row queryRow
			if err := json.Unmarshal(raw, &row); err != nil {
				t.Fatalf("row line %d: %v", line, err)
			}
			rows = append(rows, row)
		}
		line++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, hdr, rows, tr
}

// TestQueryStreamAndCacheReuse drives the service end to end: a query
// returns schema header, JSON rows with error bounds, and a stats
// trailer; repeating it through the shared engine replays the cached
// estimator state (reused trials, zero sampled).
func TestQueryStreamAndCacheReuse(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{}))
	defer ts.Close()

	body := fmt.Sprintf(`{"program": %q, "seed": 7}`, testProgram)
	status, hdr, rows, tr := postQuery(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(hdr.Columns) != 2 || hdr.Columns[0] != "Sensor" || hdr.Columns[1] != "P" {
		t.Errorf("header columns = %v", hdr.Columns)
	}
	if !hdr.Complete {
		t.Error("conf result should be complete")
	}
	if len(rows) != 4 || tr.Stats.Rows != 4 {
		t.Fatalf("got %d rows, trailer says %d, want 4", len(rows), tr.Stats.Rows)
	}
	for _, row := range rows {
		p, ok := row.Row["P"].(float64)
		if !ok || p <= 0 || p >= 1 {
			t.Errorf("row %v: P not a probability", row.Row)
		}
		if row.ErrorBound < 0 || row.ErrorBound > 1 {
			t.Errorf("row %v: error bound %v", row.Row, row.ErrorBound)
		}
	}
	if tr.Stats.SampledTrials == 0 {
		t.Error("cold query sampled no trials")
	}

	status, _, rows2, tr2 := postQuery(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("second status = %d", status)
	}
	if tr2.Stats.ReusedTrials == 0 || tr2.Stats.CacheHits == 0 || tr2.Stats.SampledTrials != 0 {
		t.Errorf("second query: sampled=%d reused=%d hits=%d, want exact replay",
			tr2.Stats.SampledTrials, tr2.Stats.ReusedTrials, tr2.Stats.CacheHits)
	}
	for i := range rows2 {
		if rows2[i].Row["P"] != rows[i].Row["P"] {
			t.Errorf("row %d: warm P %v != cold P %v", i, rows2[i].Row["P"], rows[i].Row["P"])
		}
	}

	// /v1/stats reflects both requests and the cache hits.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Engine.Evals != 2 || stats.Engine.CacheHits == 0 || stats.Engine.CacheEntries == 0 {
		t.Errorf("engine stats %+v", stats.Engine)
	}
	if stats.Server.Requests != 2 || stats.Server.RowsStreamed != 8 {
		t.Errorf("server stats %+v", stats.Server)
	}
}

// TestQueryErrors maps the failure modes onto status codes and JSON error
// bodies: malformed body and program (400), invalid option (400),
// resource limit (422), timeout (504).
func TestQueryErrors(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{}))
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", `{`, http.StatusBadRequest, "decode"},
		{"empty program", `{"program": ""}`, http.StatusBadRequest, "decode"},
		{"parse error", `{"program": "not a query ("}`, http.StatusBadRequest, "parse"},
		{"unknown relation", `{"program": "conf (Nope);"}`, http.StatusBadRequest, "parse"},
		{"bad epsilon", fmt.Sprintf(`{"program": %q, "epsilon": 7}`, testProgram), http.StatusBadRequest, "option"},
		{"trials limit", fmt.Sprintf(`{"program": %q, "max_trials": 50, "conf_epsilon": 0.01, "conf_delta": 0.01}`, testProgram), http.StatusUnprocessableEntity, "limit"},
		{"timeout", fmt.Sprintf(`{"program": %q, "timeout_ms": 1, "conf_epsilon": 0.002, "conf_delta": 0.002}`, testProgram), http.StatusGatewayTimeout, "timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var er errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if er.Kind != tc.kind || er.Error == "" {
				t.Errorf("error body %+v, want kind %q", er, tc.kind)
			}
		})
	}
}

// TestServerCaps pins the server-level clamping: a client asking for a
// looser trial limit than the server cap still trips the cap.
func TestServerCaps(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{MaxTrials: 50}))
	defer ts.Close()
	body := fmt.Sprintf(`{"program": %q, "max_trials": 1000000, "conf_epsilon": 0.01, "conf_delta": 0.01}`, testProgram)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (server cap must clamp the client limit)", resp.StatusCode)
	}
}

// TestWorkerClamp pins the worker cap: an absurd client-requested worker
// count is clamped server-side (results are worker-count-independent, so
// the query still succeeds with identical rows).
func TestWorkerClamp(t *testing.T) {
	srv := testServer(t, Config{MaxWorkers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	status, _, rows, _ := postQuery(t, ts,
		fmt.Sprintf(`{"program": %q, "seed": 7, "workers": 1000000}`, testProgram))
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	statusRef, _, ref, _ := postQuery(t, ts, fmt.Sprintf(`{"program": %q, "seed": 7, "workers": 1}`, testProgram))
	if statusRef != http.StatusOK || len(rows) != len(ref) {
		t.Fatalf("reference run: status %d, %d vs %d rows", statusRef, len(ref), len(rows))
	}
	for i := range rows {
		if rows[i].Row["P"] != ref[i].Row["P"] {
			t.Errorf("row %d: clamped P %v != reference %v", i, rows[i].Row["P"], ref[i].Row["P"])
		}
	}
}

// TestExactQuery exercises the exact (#P) path through the service.
func TestExactQuery(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{}))
	defer ts.Close()
	status, _, rows, _ := postQuery(t, ts, fmt.Sprintf(`{"program": %q, "exact": true}`, testProgram))
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	// Exact per-sensor confidence: 1 − 0.7⁴.
	want := 1 - 0.7*0.7*0.7*0.7
	for _, row := range rows {
		if p := row.Row["P"].(float64); p < want-1e-9 || p > want+1e-9 {
			t.Errorf("exact P = %v, want %v", p, want)
		}
		if row.ErrorBound != 0 {
			t.Errorf("exact row has error bound %v", row.ErrorBound)
		}
	}
}

// TestHealthz covers the liveness probe.
func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil || !ok.OK {
		t.Fatalf("healthz: %v ok=%v", err, ok.OK)
	}
}

// TestConcurrentRequests hammers the handler from many goroutines (run
// under -race this vets the shared engine + prepared-query cache).
func TestConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{DefaultTimeout: 30 * time.Second}))
	defer ts.Close()
	programs := []string{
		testProgram,
		`conf as P (project[Sensor](select[Reading >= 0](Obs)));`,
	}
	const goroutines, iters = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"program": %q, "seed": 3}`, programs[(g+i)%len(programs)])
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var buf bytes.Buffer
				_, err = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d iter %d: status %d: %s", g, i, resp.StatusCode, buf.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
