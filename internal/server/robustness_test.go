package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pdb"
)

// Panic containment: a handler bug must cost one request, not the
// process — and it must not leak capacity (in-flight gauge, admission
// slots) or skip the request counters.

// scrapeMetrics fetches /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func metricLine(text, name string) (string, bool) {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return line, true
		}
	}
	return "", false
}

// SHALL: a panicking handler yields a typed 500 ("internal"), increments
// pdb_http_panics_total, balances the in-flight gauge and any admission
// slot held across the panic, and leaves the server serving.
func TestPanicRecoveryTyped500(t *testing.T) {
	srv := testServer(t, Config{MaxInFlight: 2})

	// Inject a panicking route through the same instrument middleware the
	// real routes use; it holds an admission slot exactly the way
	// handleQuery does (deferred release), so the unwind must balance it.
	srv.mux.HandleFunc("GET /boom", srv.instrument("/boom", func(w http.ResponseWriter, r *http.Request) {
		release, _, _, ok := srv.adm.acquire(context.Background())
		if !ok {
			t.Error("admission rejected the panicking request")
			return
		}
		defer release()
		panic("handler bug")
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("500 body is not the typed error JSON: %v", err)
	}
	if er.Kind != "internal" {
		t.Errorf("error kind = %q, want \"internal\"", er.Kind)
	}

	if got := srv.adm.inFlight(); got != 0 {
		t.Errorf("admission slots leaked across the panic: in-flight = %d, want 0", got)
	}

	// The server keeps serving, and the panic is on the books.
	text := scrapeMetrics(t, ts)
	if line, ok := metricLine(text, "pdb_http_panics_total"); !ok || !strings.HasSuffix(line, " 1") {
		t.Errorf("pdb_http_panics_total = %q, want 1", line)
	}
	if line, ok := metricLine(text, "pdb_http_in_flight_requests"); ok && !strings.HasSuffix(line, " 1") {
		// The /metrics scrape itself is the one in-flight request.
		t.Errorf("in-flight gauge unbalanced after panic: %q", line)
	}
	if !strings.Contains(text, `pdb_http_requests_total{route="/boom",status="500"} 1`) {
		t.Error("panicked request missing from pdb_http_requests_total{status=\"500\"}")
	}
}

// SHALL: a panic after the response started cannot rewrite headers; the
// stream just ends, but the panic still counts and later requests work.
func TestPanicAfterFirstByteStillCounted(t *testing.T) {
	srv := testServer(t, Config{})
	srv.mux.HandleFunc("GET /late-boom", srv.instrument("/late-boom", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "partial")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic("bug after first byte")
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/late-boom")
	if err != nil {
		t.Fatalf("request did not complete: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "partial") {
		t.Errorf("started response rewritten: status %d body %q", resp.StatusCode, body)
	}

	// Still standing, still counting.
	status, _, rows, _ := postQuery(t, ts, `{"program": "`+testProgram+`"}`)
	if status != http.StatusOK || len(rows) == 0 {
		t.Fatalf("server broken after mid-stream panic: status %d, %d rows", status, len(rows))
	}
	if line, ok := metricLine(scrapeMetrics(t, ts), "pdb_http_panics_total"); !ok || !strings.HasSuffix(line, " 1") {
		t.Errorf("pdb_http_panics_total = %q, want 1", line)
	}
}

func getReadyz(t *testing.T, ts *httptest.Server) (int, readyzResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return resp.StatusCode, rz
}

// SHALL: single-node deployments are always ready; /healthz never flips.
func TestReadyzSingleNodeAlwaysReady(t *testing.T) {
	ts := httptest.NewServer(testServer(t, Config{}))
	defer ts.Close()
	status, rz := getReadyz(t, ts)
	if status != http.StatusOK || !rz.Ready {
		t.Errorf("single-node /readyz = %d %+v, want 200 ready", status, rz)
	}
}

// deadPeerServer builds a server whose engine is clustered onto n dead
// shard addresses (listeners opened and immediately closed), with a
// trip-on-first-failure breaker. The database is the multi-clause Obs
// relation, so conf queries genuinely sample — and genuinely scatter.
func deadPeerServer(t *testing.T, n int, localFallback bool) *Server {
	t.Helper()
	deadPeers := make([]string, n)
	for i := range deadPeers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadPeers[i] = ln.Addr().String()
		ln.Close()
	}
	rows := [][]any{}
	probs := []float64{}
	for s := 0; s < 4; s++ {
		for r := 0; r < 4; r++ {
			rows = append(rows, []any{fmt.Sprintf("s%d", s), r})
			probs = append(probs, 0.3)
		}
	}
	db, err := pdb.NewBuilder().
		Independent("Obs", []string{"Sensor", "Reading"}, rows, probs).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := db.Engine(pdb.WithEngineCluster(pdb.ClusterOptions{
		Peers:            deadPeers,
		DialTimeout:      200 * time.Millisecond,
		Retries:          0,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 1,
		ProbeInterval:    -1,
		LocalFallback:    localFallback,
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := New(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// SHALL: when every shard breaker is open and local fallback is off,
// /readyz returns 503 so the balancer drains the node — while /healthz
// stays 200 (restarting the coordinator would not revive the shards).
func TestReadyzAllShardsDown(t *testing.T) {
	ts := httptest.NewServer(deadPeerServer(t, 2, false))
	defer ts.Close()

	// Breakers start closed: the node is (optimistically) ready.
	if status, rz := getReadyz(t, ts); status != http.StatusOK || !rz.Ready {
		t.Fatalf("pre-trip /readyz = %d %+v, want 200 ready", status, rz)
	}

	// One failing query trips both breakers (threshold 1).
	status, _, _, _ := postQuery(t, ts, `{"program": "`+testProgram+`"}`)
	if status == http.StatusOK {
		t.Fatal("query against dead shards succeeded")
	}

	status, rz := getReadyz(t, ts)
	if status != http.StatusServiceUnavailable || rz.Ready {
		t.Errorf("/readyz with all breakers open = %d %+v, want 503 not-ready", status, rz)
	}
	if rz.ShardsTotal != 2 || rz.ShardsDown != 2 {
		t.Errorf("shard accounting = %+v, want 2/2 down", rz)
	}

	// Liveness is about the process, not the cluster.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d during shard outage, want 200", resp.StatusCode)
	}
}

// SHALL: with local fallback enabled, dead shards degrade the node but
// never make it unready — queries still succeed on the coordinator.
func TestReadyzLocalFallbackStaysReady(t *testing.T) {
	ts := httptest.NewServer(deadPeerServer(t, 1, true))
	defer ts.Close()

	status, _, rows, _ := postQuery(t, ts, `{"program": "`+testProgram+`"}`)
	if status != http.StatusOK || len(rows) == 0 {
		t.Fatalf("fallback query: status %d, %d rows", status, len(rows))
	}
	rstatus, rz := getReadyz(t, ts)
	if rstatus != http.StatusOK || !rz.Ready {
		t.Errorf("/readyz with local fallback = %d %+v, want 200 ready", rstatus, rz)
	}
	if !rz.LocalFallback {
		t.Error("readyz body does not advertise local fallback")
	}
	if !rz.Degraded || rz.ShardsDown == 0 {
		t.Errorf("degradation not reported: %+v", rz)
	}
}
