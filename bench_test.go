// Root-level benchmark harness: one benchmark per reproduced paper
// artifact (DESIGN.md's E1–E10). Each benchmark runs the corresponding
// experiment driver in quick mode, so `go test -bench=. -benchmem`
// regenerates every figure/example/theorem measurement; cmd/pdbrepro
// prints the full tables.
package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	run, _, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.Config{Seed: 2008, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1CoinExample regenerates Figure 1 / Example 2.2 (the coin
// U-relations and the posterior table U).
func BenchmarkE1CoinExample(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2EpsilonGeometry regenerates Figure 2 / Example 5.4 (the
// ε-maximization geometry).
func BenchmarkE2EpsilonGeometry(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3AdaptivePredicate regenerates the Figure 3 / Theorem 5.8
// adaptive-vs-naive comparison.
func BenchmarkE3AdaptivePredicate(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4KarpLubyFPRAS regenerates the Proposition 4.2 (ε,δ) grid.
func BenchmarkE4KarpLubyFPRAS(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5ExactVsApprox regenerates the Theorem 3.4 vs Corollary 4.3
// crossover table.
func BenchmarkE5ExactVsApprox(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6LinearEpsilon regenerates the Theorem 5.2 closed-form
// validation sweep.
func BenchmarkE6LinearEpsilon(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7CornerPoint regenerates the Theorem 5.5 corner-criterion
// validation sweep.
func BenchmarkE7CornerPoint(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Singularity regenerates the Definition 5.6 / Example 5.7
// singularity cost table.
func BenchmarkE8Singularity(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9ProvenanceBounds regenerates the Lemma 6.4 / Example 6.5
// fan-in bound table.
func BenchmarkE9ProvenanceBounds(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10QueryApprox regenerates the Theorem 6.7 end-to-end table.
func BenchmarkE10QueryApprox(b *testing.B) { benchExperiment(b, "E10") }
