// Package repro is a Go reproduction of Koch's PODS'08 work on
// approximating the confidence of conjunctive queries on probabilistic
// (U-relational) databases, grown into a parallel, resumable query
// engine.
//
// The public, supported API is the pdb package (open or build a
// database, prepare a UA query, evaluate it with context-aware
// cancellation, validated options, and progress hooks); everything under
// internal/ is an implementation detail. The tree splits into the
// representation layer (internal/vars, internal/worlds, internal/rel,
// internal/urel, internal/dnf), the query layer (internal/parser,
// internal/expr, internal/algebra), the approximation layer
// (internal/karpluby, internal/predapprox, internal/provenance,
// internal/stats), and the engine (internal/core on top of
// internal/sched). cmd/pdbcli is the interactive CLI, cmd/pdbrepro
// regenerates the paper's experiments (internal/experiments,
// internal/workload), and examples/ holds five runnable walkthroughs on
// the pdb facade.
// docs/ARCHITECTURE.md describes the dataflow, the concurrency model, and
// the cross-restart resume model with its determinism invariants.
//
// The root package itself carries only the benchmark harness that runs
// each experiment driver (E1–E10) once per benchmark iteration.
package repro
