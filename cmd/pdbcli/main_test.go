package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// base returns a config with the flag defaults.
func base(rels relFlags, query string) cliConfig {
	return cliConfig{rels: rels, query: query, eps0: 0.05, delta: 0.1, seed: 1, resume: true}
}

func TestRunCoinQuery(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n2headed,1\n")
	cfg := base(relFlags{"Coins=" + coins}, "conf(project[CoinType](repairkey[@Count](Coins)))")
	if err := run(cfg); err != nil {
		t.Fatalf("exact run failed: %v", err)
	}
	cfg.approx = true
	if err := run(cfg); err != nil {
		t.Fatalf("approx run failed: %v", err)
	}
}

// TestRunProfiles checks the -cpuprofile/-memprofile flags produce
// non-empty pprof files on both evaluation paths.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n2headed,1\n")
	cfg := base(relFlags{"Coins=" + coins}, "conf(project[CoinType](repairkey[@Count](Coins)))")
	cfg.cpuprofile = filepath.Join(dir, "cpu.pprof")
	cfg.memprofile = filepath.Join(dir, "mem.pprof")
	cfg.approx = true
	if err := run(cfg); err != nil {
		t.Fatalf("profiled run failed: %v", err)
	}
	for _, p := range []string{cfg.cpuprofile, cfg.memprofile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n")
	cfg := base(relFlags{"Coins=" + coins}, "conf(Coins)")
	cfg.explain = true
	if err := run(cfg); err != nil {
		t.Fatalf("explain run failed: %v", err)
	}
	// Schema errors are caught statically at Prepare.
	if err := run(base(relFlags{"Coins=" + coins}, "select[Nope = 1](Coins)")); err == nil {
		t.Error("static schema validation should reject unknown attribute")
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n2headed,1\n")
	qf := writeFile(t, dir, "q.ua", "R := repairkey[@Count](Coins);\nposs(R);\n")
	cfg := base(relFlags{"Coins=" + coins}, "")
	cfg.queryFile = qf
	if err := run(cfg); err != nil {
		t.Fatalf("query file run failed: %v", err)
	}
}

func TestRunTimeout(t *testing.T) {
	dir := t.TempDir()
	// 40 independent coin flips (repair-key per ID), conf[∅] ≈ 1, and a σ̂
	// threshold only 0.01 away: the margin forces ~250k doubling rounds —
	// far longer than the timeout.
	var sb strings.Builder
	sb.WriteString("ID,Present,W\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "%d,1,1\n%d,0,1\n", i, i)
	}
	rel := writeFile(t, dir, "r.csv", sb.String())
	cfg := base(relFlags{"R=" + rel},
		"aselect[p1 >= 0.99 over conf[]](project[ID](select[Present = 1](repairkey[ID@W](R))))")
	cfg.approx = true
	cfg.eps0 = 0.001
	cfg.delta = 0.0005
	cfg.timeout = 30 * time.Millisecond
	err := run(cfg)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if !strings.Contains(err.Error(), "timed out after") {
		t.Errorf("timeout error %q should mention the timeout", err)
	}
}

func TestRunOptionValidation(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n")
	cfg := base(relFlags{"Coins=" + coins}, "conf(Coins)")
	cfg.approx = true
	cfg.delta = 1.5
	err := run(cfg)
	if err == nil {
		t.Fatal("out-of-range -delta should be rejected")
	}
	if !strings.Contains(err.Error(), "WithDelta") {
		t.Errorf("error %q should come from option validation", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n")
	cases := []struct {
		name  string
		rels  relFlags
		query string
		qfile string
	}{
		{"no query", relFlags{"Coins=" + coins}, "", ""},
		{"bad rel spec", relFlags{"Coins"}, "Coins", ""},
		{"missing file", relFlags{"Coins=/nonexistent.csv"}, "Coins", ""},
		{"parse error", relFlags{"Coins=" + coins}, "select[", ""},
		{"unknown relation", relFlags{"Coins=" + coins}, "Nope", ""},
		{"missing query file", nil, "", filepath.Join(dir, "missing.ua")},
	}
	for _, c := range cases {
		cfg := base(c.rels, c.query)
		cfg.queryFile = c.qfile
		if err := run(cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
