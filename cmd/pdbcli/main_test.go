package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCoinQuery(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n2headed,1\n")
	query := "conf(project[CoinType](repairkey[@Count](Coins)))"
	if err := run(relFlags{"Coins=" + coins}, query, "", false, false, 0.05, 0.1, 1, 0, true); err != nil {
		t.Fatalf("exact run failed: %v", err)
	}
	if err := run(relFlags{"Coins=" + coins}, query, "", true, false, 0.05, 0.1, 1, 0, true); err != nil {
		t.Fatalf("approx run failed: %v", err)
	}
}

func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n")
	if err := run(relFlags{"Coins=" + coins}, "conf(Coins)", "", false, true, 0.05, 0.1, 1, 0, true); err != nil {
		t.Fatalf("explain run failed: %v", err)
	}
	// Schema errors are caught statically.
	if err := run(relFlags{"Coins=" + coins}, "select[Nope = 1](Coins)", "", false, false, 0.05, 0.1, 1, 0, true); err == nil {
		t.Error("static schema validation should reject unknown attribute")
	}
}

func TestRunQueryFile(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n2headed,1\n")
	qf := writeFile(t, dir, "q.ua", "R := repairkey[@Count](Coins);\nposs(R);\n")
	if err := run(relFlags{"Coins=" + coins}, "", qf, false, false, 0.05, 0.1, 1, 0, true); err != nil {
		t.Fatalf("query file run failed: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	coins := writeFile(t, dir, "coins.csv", "CoinType,Count\nfair,2\n")
	cases := []struct {
		name  string
		rels  relFlags
		query string
		qfile string
	}{
		{"no query", relFlags{"Coins=" + coins}, "", ""},
		{"bad rel spec", relFlags{"Coins"}, "Coins", ""},
		{"missing file", relFlags{"Coins=/nonexistent.csv"}, "Coins", ""},
		{"parse error", relFlags{"Coins=" + coins}, "select[", ""},
		{"unknown relation", relFlags{"Coins=" + coins}, "Nope", ""},
		{"missing query file", nil, "", filepath.Join(dir, "missing.ua")},
	}
	for _, c := range cases {
		if err := run(c.rels, c.query, c.qfile, false, false, 0.05, 0.1, 1, 0, true); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
