// Command pdbcli loads complete relations from CSV files and evaluates UA
// queries over them, exactly or approximately, through the public pdb API.
//
// Usage:
//
//	pdbcli -rel Coins=coins.csv -rel Faces=faces.csv \
//	       -query 'conf(project[CoinType](repairkey[@Count](Coins)))'
//
//	pdbcli -rel R=r.csv -queryfile program.ua -approx -eps0 0.05 -delta 0.1 \
//	       -timeout 30s -progress
//
// Relations load from CSV or from pdbstore columnar files (the typed
// on-disk format of docs/STORAGE.md), detected by content; -format
// csv|pdbstore forces one loader. Convert between the formats with
//
//	pdbcli convert relation.csv relation.pdbs     # CSV → pdbstore
//	pdbcli convert relation.pdbs relation.csv     # pdbstore → CSV
//
// -max-memory caps the evaluation's materialized bytes; adding -spill-dir
// turns that cap into out-of-core execution — over-budget intermediates
// spill to disk and the query completes, bit-identically, instead of
// aborting.
//
// The query language is documented in internal/parser. Probabilistic data
// is introduced with repairkey[...@W](...) over the loaded complete
// relations; -approx switches confidence computation and σ̂ decisions to
// the Karp–Luby / Figure-3 machinery with per-tuple error bounds. A
// -timeout bound cancels the evaluation cooperatively; -progress reports
// every pass of the doubling loop on stderr. -cpuprofile and -memprofile
// write pprof profiles of the evaluation (CPU, and heap after a final GC)
// so operator hot spots can be captured without a test harness.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/pdb"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }

func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// cliConfig carries the parsed command line.
type cliConfig struct {
	rels       relFlags
	query      string
	queryFile  string
	approx     bool
	explain    bool
	progress   bool
	eps0       float64
	delta      float64
	seed       int64
	workers    int
	resume     bool
	timeout    time.Duration
	cpuprofile string
	memprofile string
	format     string
	spillDir   string
	maxMemory  int64
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		if err := runConvert(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pdbcli:", err)
			os.Exit(1)
		}
		return
	}
	var cfg cliConfig
	flag.StringVar(&cfg.query, "query", "", "UA query text")
	flag.StringVar(&cfg.queryFile, "queryfile", "", "file containing the UA query program")
	flag.BoolVar(&cfg.approx, "approx", false, "use approximate evaluation (Karp–Luby + Figure 3)")
	flag.Float64Var(&cfg.eps0, "eps0", 0.05, "ε₀ for approximate evaluation")
	flag.Float64Var(&cfg.delta, "delta", 0.1, "target per-tuple error δ")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for approximate evaluation")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel estimation workers (0 = GOMAXPROCS); results are seed-determined regardless")
	flag.BoolVar(&cfg.resume, "resume", true, "reuse estimator state across σ̂ doubling restarts (bit-identical, ~2× fewer trials); off re-samples every restart from scratch")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort evaluation after this duration (0 = no limit)")
	flag.BoolVar(&cfg.progress, "progress", false, "report each pass of the doubling loop on stderr")
	flag.BoolVar(&cfg.explain, "explain", false, "print the plan with inferred schemas instead of evaluating")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the evaluation to this file (inspect with go tool pprof)")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile (after evaluation and a final GC) to this file")
	flag.StringVar(&cfg.format, "format", "auto", "relation file format: auto (sniff per file), csv, or pdbstore")
	flag.StringVar(&cfg.spillDir, "spill-dir", "", "with -max-memory: spill over-budget intermediates here instead of aborting (out-of-core evaluation)")
	flag.Int64Var(&cfg.maxMemory, "max-memory", 0, "cap on estimated materialized bytes (0 = unlimited); aborts with a limit error unless -spill-dir is set")
	flag.Var(&cfg.rels, "rel", "Name=path — a complete relation to load, CSV or pdbstore (repeatable)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pdbcli:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and returns a stop function that also
// captures the heap profile, so operator hot spots can be captured from
// the CLI without a test harness.
func startProfiles(cfg cliConfig) (func() error, error) {
	var cpuFile *os.File
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if cfg.memprofile != "" {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				return fmt.Errorf("creating -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(cfg cliConfig) (err error) {
	src := cfg.query
	if cfg.queryFile != "" {
		data, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("no query given; use -query or -queryfile")
	}

	stopProfiles, err := startProfiles(cfg)
	if err != nil {
		return err
	}
	// Finalize the profiles on every return path: a truncated CPU profile
	// or missing heap profile is worse than no profile at all.
	defer func() {
		if stopErr := stopProfiles(); stopErr != nil && err == nil {
			err = stopErr
		}
	}()

	sources := map[string]string{}
	for _, spec := range cfg.rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q; want Name=path", spec)
		}
		sources[name] = path
	}
	db, err := openDB(cfg.format, sources)
	if err != nil {
		return err
	}

	// Prepare parses, validates, and schema-checks before any evaluation
	// work (and powers -explain).
	q, err := db.Prepare(src)
	if err != nil {
		return err
	}
	if cfg.explain {
		fmt.Print(q.Explain())
		return nil
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	var limitOpts []pdb.Option
	if cfg.maxMemory > 0 {
		limitOpts = append(limitOpts, pdb.WithMaxMemory(cfg.maxMemory))
	}
	if cfg.spillDir != "" {
		limitOpts = append(limitOpts, pdb.WithSpillDir(cfg.spillDir))
	}

	if !cfg.approx {
		res, err := q.EvalExact(ctx, append([]pdb.Option{pdb.WithWorkers(cfg.workers)}, limitOpts...)...)
		if err != nil {
			return timeoutErr(err, cfg.timeout)
		}
		printResult(res, false)
		return nil
	}

	opts := append([]pdb.Option{
		pdb.WithEpsilon(cfg.eps0),
		pdb.WithDelta(cfg.delta),
		pdb.WithSeed(cfg.seed),
		pdb.WithWorkers(cfg.workers),
	}, limitOpts...)
	if !cfg.resume {
		opts = append(opts, pdb.WithNoResume())
	}
	if cfg.progress {
		opts = append(opts, pdb.WithProgress(func(ev pdb.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "# pass %d: rounds=%d/%d worst-bound=%.4g sampled=%d reused=%d done=%v\n",
				ev.Restart, ev.Rounds, ev.MaxRounds, ev.WorstBound, ev.SampledTrials, ev.ReusedTrials, ev.Done)
		}))
	}
	res, err := q.Eval(ctx, opts...)
	if err != nil {
		return timeoutErr(err, cfg.timeout)
	}
	printResult(res, true)
	return nil
}

// timeoutErr rewraps a deadline error with the user's -timeout value.
func timeoutErr(err error, timeout time.Duration) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("evaluation timed out after %s", timeout)
	}
	return err
}

func printResult(res *pdb.Result, stats bool) {
	fmt.Println(strings.Join(res.Columns(), "\t"))
	for row := range res.Rows() {
		fmt.Println(row)
	}
	if stats {
		s := res.Stats()
		fmt.Printf("\n# rounds=%d restarts=%d sampled-trials=%d reused-trials=%d decisions=%d singular-drops=%d\n",
			s.FinalRounds, s.Restarts, s.SampledTrials, s.ReusedTrials, s.Decisions, s.SingularDrops)
	}
}

// / openDB loads the -rel sources honouring -format: auto (the default,
// and what a zero config means) sniffs each file's content, csv and
// pdbstore force one loader for every file.
func openDB(format string, sources map[string]string) (*pdb.DB, error) {
	switch format {
	case "", "auto":
		return pdb.Open(sources)
	case "csv", "pdbstore":
	default:
		return nil, fmt.Errorf("-format must be auto, csv, or pdbstore; got %q", format)
	}
	b := pdb.NewBuilder()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic load order, like pdb.Open
	for _, name := range names {
		if format == "pdbstore" {
			b.Store(name, sources[name])
			continue
		}
		f, err := os.Open(sources[name])
		if err != nil {
			return nil, fmt.Errorf("opening relation %q: %w", name, err)
		}
		b.CSV(name, f)
		f.Close()
	}
	return b.Build()
}

// runConvert implements `pdbcli convert <in> <out>`: a pdbstore input
// converts to CSV, anything else parses as CSV and converts to pdbstore.
// CSV → pdbstore is lossless (the stored file loads bit-identically to the
// CSV); pdbstore → CSV re-types on reload for values CSV cannot represent,
// such as strings that look like numbers (see docs/STORAGE.md).
func runConvert(args []string) error {
	fs := flag.NewFlagSet("pdbcli convert", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pdbcli convert <in.csv|in.pdbs> <out>")
		fmt.Fprintln(fs.Output(), "converts CSV to the pdbstore columnar format, or a pdbstore file back to CSV")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("convert wants exactly two arguments, got %d", fs.NArg())
	}
	in, out := fs.Arg(0), fs.Arg(1)
	if store.Sniff(in) {
		r, err := store.ReadRelation(in, rel.NewInterner())
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := parser.SaveCSV(f, r); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	r, err := parser.LoadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	return store.WriteRelation(out, r)
}
