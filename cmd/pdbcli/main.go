// Command pdbcli loads complete relations from CSV files and evaluates UA
// queries over them, exactly or approximately.
//
// Usage:
//
//	pdbcli -rel Coins=coins.csv -rel Faces=faces.csv \
//	       -query 'conf(project[CoinType](repairkey[@Count](Coins)))'
//
//	pdbcli -rel R=r.csv -queryfile program.ua -approx -eps0 0.05 -delta 0.1
//
// The query language is documented in internal/parser. Probabilistic data
// is introduced with repairkey[...@W](...) over the loaded complete
// relations; -approx switches confidence computation and σ̂ decisions to
// the Karp–Luby / Figure-3 machinery with per-tuple error bounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/urel"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }

func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var (
		rels      relFlags
		query     = flag.String("query", "", "UA query text")
		queryFile = flag.String("queryfile", "", "file containing the UA query program")
		approx    = flag.Bool("approx", false, "use approximate evaluation (Karp–Luby + Figure 3)")
		eps0      = flag.Float64("eps0", 0.05, "ε₀ for approximate evaluation")
		delta     = flag.Float64("delta", 0.1, "target per-tuple error δ")
		seed      = flag.Int64("seed", 1, "random seed for approximate evaluation")
		workers   = flag.Int("workers", 0, "parallel estimation workers (0 = GOMAXPROCS); results are seed-determined regardless")
		resume    = flag.Bool("resume", true, "reuse estimator state across σ̂ doubling restarts (bit-identical, ~2× fewer trials); off re-samples every restart from scratch")
		explain   = flag.Bool("explain", false, "print the plan with inferred schemas instead of evaluating")
	)
	flag.Var(&rels, "rel", "Name=path.csv — a complete relation to load (repeatable)")
	flag.Parse()

	if err := run(rels, *query, *queryFile, *approx, *explain, *eps0, *delta, *seed, *workers, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "pdbcli:", err)
		os.Exit(1)
	}
}

func run(rels relFlags, query, queryFile string, approx, explain bool, eps0, delta float64, seed int64, workers int, resume bool) error {
	src := query
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("no query given; use -query or -queryfile")
	}
	q, err := parser.Parse(src)
	if err != nil {
		return err
	}

	db := urel.NewDatabase()
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q; want Name=path.csv", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := parser.LoadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		db.AddComplete(name, r)
	}

	// Static schema validation catches malformed programs before any
	// evaluation work (and powers -explain).
	if _, err := algebra.InferSchema(q, db); err != nil {
		return err
	}
	if explain {
		fmt.Print(algebra.Explain(q, db))
		return nil
	}

	if !approx {
		res, err := algebra.NewURelEvaluator(db).Eval(q)
		if err != nil {
			return err
		}
		printURel(res.Rel, res.Complete, nil)
		return nil
	}

	eng := core.NewEngine(db, core.Options{Eps0: eps0, Delta: delta, Seed: seed, Workers: workers, NoResume: !resume})
	res, err := eng.EvalApprox(q)
	if err != nil {
		return err
	}
	printURel(res.Rel, res.Complete, res)
	fmt.Printf("\n# rounds=%d restarts=%d sampled-trials=%d reused-trials=%d decisions=%d singular-drops=%d\n",
		res.Stats.FinalRounds, res.Stats.Restarts, res.Stats.EstimatorTrials,
		res.Stats.ReusedTrials, res.Stats.Decisions, res.Stats.SingularDrops)
	return nil
}

func printURel(r *urel.Relation, complete bool, res *core.Result) {
	fmt.Println(strings.Join(r.Schema(), "\t"))
	lines := make([]string, 0, r.Len())
	for _, ut := range r.Tuples() {
		parts := make([]string, 0, len(ut.Row)+2)
		for _, v := range ut.Row {
			parts = append(parts, v.String())
		}
		if !complete {
			parts = append(parts, "D="+ut.D.Key())
		}
		if res != nil {
			if e := res.TupleError(ut.Row); e > 0 {
				parts = append(parts, fmt.Sprintf("±err≤%.4g", e))
			}
			if res.IsSingular(ut.Row) {
				parts = append(parts, "SINGULAR")
			}
		}
		lines = append(lines, strings.Join(parts, "\t"))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
