// Command pdbcli loads complete relations from CSV files and evaluates UA
// queries over them, exactly or approximately, through the public pdb API.
//
// Usage:
//
//	pdbcli -rel Coins=coins.csv -rel Faces=faces.csv \
//	       -query 'conf(project[CoinType](repairkey[@Count](Coins)))'
//
//	pdbcli -rel R=r.csv -queryfile program.ua -approx -eps0 0.05 -delta 0.1 \
//	       -timeout 30s -progress
//
// The query language is documented in internal/parser. Probabilistic data
// is introduced with repairkey[...@W](...) over the loaded complete
// relations; -approx switches confidence computation and σ̂ decisions to
// the Karp–Luby / Figure-3 machinery with per-tuple error bounds. A
// -timeout bound cancels the evaluation cooperatively; -progress reports
// every pass of the doubling loop on stderr. -cpuprofile and -memprofile
// write pprof profiles of the evaluation (CPU, and heap after a final GC)
// so operator hot spots can be captured without a test harness.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/pdb"
)

type relFlags []string

func (r *relFlags) String() string { return strings.Join(*r, ",") }

func (r *relFlags) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// cliConfig carries the parsed command line.
type cliConfig struct {
	rels       relFlags
	query      string
	queryFile  string
	approx     bool
	explain    bool
	progress   bool
	eps0       float64
	delta      float64
	seed       int64
	workers    int
	resume     bool
	timeout    time.Duration
	cpuprofile string
	memprofile string
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.query, "query", "", "UA query text")
	flag.StringVar(&cfg.queryFile, "queryfile", "", "file containing the UA query program")
	flag.BoolVar(&cfg.approx, "approx", false, "use approximate evaluation (Karp–Luby + Figure 3)")
	flag.Float64Var(&cfg.eps0, "eps0", 0.05, "ε₀ for approximate evaluation")
	flag.Float64Var(&cfg.delta, "delta", 0.1, "target per-tuple error δ")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for approximate evaluation")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel estimation workers (0 = GOMAXPROCS); results are seed-determined regardless")
	flag.BoolVar(&cfg.resume, "resume", true, "reuse estimator state across σ̂ doubling restarts (bit-identical, ~2× fewer trials); off re-samples every restart from scratch")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort evaluation after this duration (0 = no limit)")
	flag.BoolVar(&cfg.progress, "progress", false, "report each pass of the doubling loop on stderr")
	flag.BoolVar(&cfg.explain, "explain", false, "print the plan with inferred schemas instead of evaluating")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the evaluation to this file (inspect with go tool pprof)")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile (after evaluation and a final GC) to this file")
	flag.Var(&cfg.rels, "rel", "Name=path.csv — a complete relation to load (repeatable)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "pdbcli:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and returns a stop function that also
// captures the heap profile, so operator hot spots can be captured from
// the CLI without a test harness.
func startProfiles(cfg cliConfig) (func() error, error) {
	var cpuFile *os.File
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if cfg.memprofile != "" {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				return fmt.Errorf("creating -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(cfg cliConfig) (err error) {
	src := cfg.query
	if cfg.queryFile != "" {
		data, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("no query given; use -query or -queryfile")
	}

	stopProfiles, err := startProfiles(cfg)
	if err != nil {
		return err
	}
	// Finalize the profiles on every return path: a truncated CPU profile
	// or missing heap profile is worse than no profile at all.
	defer func() {
		if stopErr := stopProfiles(); stopErr != nil && err == nil {
			err = stopErr
		}
	}()

	sources := map[string]string{}
	for _, spec := range cfg.rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -rel %q; want Name=path.csv", spec)
		}
		sources[name] = path
	}
	db, err := pdb.Open(sources)
	if err != nil {
		return err
	}

	// Prepare parses, validates, and schema-checks before any evaluation
	// work (and powers -explain).
	q, err := db.Prepare(src)
	if err != nil {
		return err
	}
	if cfg.explain {
		fmt.Print(q.Explain())
		return nil
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	if !cfg.approx {
		res, err := q.EvalExact(ctx, pdb.WithWorkers(cfg.workers))
		if err != nil {
			return timeoutErr(err, cfg.timeout)
		}
		printResult(res, false)
		return nil
	}

	opts := []pdb.Option{
		pdb.WithEpsilon(cfg.eps0),
		pdb.WithDelta(cfg.delta),
		pdb.WithSeed(cfg.seed),
		pdb.WithWorkers(cfg.workers),
	}
	if !cfg.resume {
		opts = append(opts, pdb.WithNoResume())
	}
	if cfg.progress {
		opts = append(opts, pdb.WithProgress(func(ev pdb.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "# pass %d: rounds=%d/%d worst-bound=%.4g sampled=%d reused=%d done=%v\n",
				ev.Restart, ev.Rounds, ev.MaxRounds, ev.WorstBound, ev.SampledTrials, ev.ReusedTrials, ev.Done)
		}))
	}
	res, err := q.Eval(ctx, opts...)
	if err != nil {
		return timeoutErr(err, cfg.timeout)
	}
	printResult(res, true)
	return nil
}

// timeoutErr rewraps a deadline error with the user's -timeout value.
func timeoutErr(err error, timeout time.Duration) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("evaluation timed out after %s", timeout)
	}
	return err
}

func printResult(res *pdb.Result, stats bool) {
	fmt.Println(strings.Join(res.Columns(), "\t"))
	for row := range res.Rows() {
		fmt.Println(row)
	}
	if stats {
		s := res.Stats()
		fmt.Printf("\n# rounds=%d restarts=%d sampled-trials=%d reused-trials=%d decisions=%d singular-drops=%d\n",
			s.FinalRounds, s.Restarts, s.SampledTrials, s.ReusedTrials, s.Decisions, s.SingularDrops)
	}
}
