package main

import (
	"testing"

	"repro/internal/server"
)

func TestParseQuota(t *testing.T) {
	cases := []struct {
		spec string
		want server.Quota
	}{
		{"", server.Quota{}},
		{"max_concurrent:4", server.Quota{MaxConcurrent: 4}},
		{"trials_per_sec:1000,burst:5000", server.Quota{TrialsPerSec: 1000, TrialsBurst: 5000}},
		{
			"max_concurrent:2, trials_per_sec:0.5, burst:1, max_trials:100000, max_memory:1048576",
			server.Quota{MaxConcurrent: 2, TrialsPerSec: 0.5, TrialsBurst: 1, MaxTrials: 100000, MaxMemory: 1 << 20},
		},
	}
	for _, tc := range cases {
		got, err := parseQuota(tc.spec)
		if err != nil {
			t.Errorf("parseQuota(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseQuota(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseQuotaErrors(t *testing.T) {
	for _, spec := range []string{
		"max_concurrent",        // no value
		"max_concurrent:-1",     // negative
		"trials_per_sec:fast",   // not a number
		"concurrency:3",         // unknown key
		"max_trials:1e6",        // integers only
		"max_concurrent:2;ok:1", // wrong separator
	} {
		if _, err := parseQuota(spec); err == nil {
			t.Errorf("parseQuota(%q) accepted", spec)
		}
	}
}
