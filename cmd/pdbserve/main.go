// Command pdbserve runs the probabilistic-database query service: an HTTP
// front-end (see internal/server) over one long-lived pdb.Engine, so all
// clients share a content-keyed Karp–Luby cache and repeated queries
// resume each other's estimation work.
//
// Relations are loaded from CSV files (header row first), either
// explicitly or from a directory:
//
//	pdbserve -table people=data/people.csv -table obs=data/obs.csv
//	pdbserve -datadir examples/data            # every *.csv and *.pdbs, named by stem
//
// Relations may also be pdbstore columnar files (docs/STORAGE.md; produce
// them with pdbcli convert) — formats are detected by content, and -format
// csv|pdbstore restricts what -datadir picks up. -spill-dir enables
// out-of-core evaluation for memory-limited requests: instead of failing
// with a memory limit error, over-budget intermediates spill to disk and
// the query completes with bit-identical results.
//
// Query it:
//
//	curl -s localhost:8080/v1/query -d '{"program":"conf (repairkey[id @ w](obs));"}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics      # Prometheus text exposition
//
// Multi-tenant fleets name tenants via a request header and bound each
// with a quota; global admission control caps concurrent evaluations:
//
//	pdbserve -datadir data -tenant-header X-Pdb-Tenant \
//	    -tenant team-a=max_concurrent:4,trials_per_sec:200000 \
//	    -default-quota max_concurrent:2 \
//	    -max-inflight 8 -admission-queue 16 -admission-wait 2s
//
// Over-quota and shed requests get 429 with a Retry-After header; see
// docs/OPERATIONS.md for the full flag, quota, and metrics reference and
// docs/API.md for the wire protocol.
//
// Horizontal sharding splits one service across processes. Shard servers
// hold no data and speak a binary TCP protocol, the coordinator keeps the
// whole HTTP surface (tenancy, quotas, admission) and scatters sampling
// work to them — results are bit-identical to a single-node run:
//
//	pdbserve -shard -addr :9101
//	pdbserve -shard -addr :9102
//	pdbserve -datadir data -coordinator -peers localhost:9101,localhost:9102
//
// The coordinator tolerates shard failure without changing a single
// output bit: per-shard circuit breakers (-breaker-threshold) quarantine
// dead shards, chunk ranges fail over to survivors, background probes
// (-probe-interval) re-admit recovered shards, stragglers are hedged
// (-hedge-after), and -local-fallback lets the coordinator sample
// locally when every shard is gone. GET /readyz turns 503 when no shard
// is healthy and local fallback is off.
//
// Quotas can be reloaded at runtime without a restart: put name=spec
// lines in a file (tenant "default" sets the default quota), point
// -quota-file at it, and send SIGHUP or POST /v1/admin/reload.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/pdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdbserve:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("pdbserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	datadir := fs.String("datadir", "", "load every relation file in this directory, named by file stem (see -format)")
	format := fs.String("format", "auto", "-datadir formats: auto (*.csv and *.pdbs), csv, or pdbstore; -table files are content-sniffed regardless")
	spillDir := fs.String("spill-dir", "", "spill directory for out-of-core evaluation of memory-limited requests (empty disables)")
	cacheSize := fs.Int("cache", 4096, "engine estimator-cache entries (LRU beyond)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request evaluation timeout (0 disables)")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested timeouts (0 disables)")
	maxTrials := fs.Int64("max-trials", 0, "per-request sampled-trials cap (0 disables)")
	maxMemory := fs.Int64("max-memory", 0, "per-request materialized-bytes cap (0 disables)")
	maxWorkers := fs.Int("max-workers", 0, "cap on client-requested workers (0 = GOMAXPROCS, negative disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	tenantHeader := fs.String("tenant-header", "", "request header naming the tenant (e.g. X-Pdb-Tenant); empty disables tenant scoping")
	requireTenant := fs.Bool("require-tenant", false, "reject requests without the tenant header (403)")
	strictTenants := fs.Bool("strict-tenants", false, "reject tenants without a -tenant entry (403, allowlist mode)")
	shard := fs.Bool("shard", false, "run as a cluster shard server (binary TCP protocol on -addr; no relations loaded)")
	shardWorkers := fs.Int("shard-workers", 0, "shard sampling workers (0 = GOMAXPROCS)")
	shardCache := fs.Int("shard-cache", 0, "shard chunk-count cache entries (0 = default, negative disables)")
	coordinator := fs.Bool("coordinator", false, "scatter sampling work across the -peers shard servers")
	peersFlag := fs.String("peers", "", "comma-separated shard addresses (host:port); implies -coordinator")
	clusterTimeout := fs.Duration("cluster-timeout", 0, "per-shard, per-attempt RPC deadline (0 = 2m)")
	clusterRetries := fs.Int("cluster-retries", 2, "retries per failed shard RPC before failing over")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive exhausted-retry failures that trip a shard's circuit breaker (0 = default 3, negative disables)")
	probeInterval := fs.Duration("probe-interval", 0, "how often tripped shards are probed for re-admission (0 = default 2s, negative disables)")
	hedgeAfter := fs.Duration("hedge-after", 0, "delay before hedging a straggling shard RPC to another shard (0 = adaptive p95-based, negative disables)")
	localFallback := fs.Bool("local-fallback", false, "sample chunks on the coordinator itself when no healthy shard remains (bit-identical, but competes with HTTP serving for CPU)")
	quotaFile := fs.String("quota-file", "", "file of name=quota-spec lines (tenant \"default\" sets the default quota); reloaded on SIGHUP or POST /v1/admin/reload")
	maxInFlight := fs.Int("max-inflight", 0, "global cap on concurrent evaluations (0 disables admission control)")
	admissionQueue := fs.Int("admission-queue", 0, "requests that may wait for an evaluation slot before new arrivals get 429")
	admissionWait := fs.Duration("admission-wait", time.Second, "longest one request waits in the admission queue")
	quotas := map[string]server.Quota{}
	fs.Func("tenant", "tenant quota as name="+quotaSpecSyntax+" (repeatable)", func(v string) error {
		name, spec, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("-tenant wants name=spec, got %q", v)
		}
		q, err := parseQuota(spec)
		if err != nil {
			return fmt.Errorf("-tenant %s: %w", name, err)
		}
		quotas[name] = q
		return nil
	})
	var defaultQuota server.Quota
	fs.Func("default-quota", "quota for tenants without a -tenant entry, as "+quotaSpecSyntax, func(v string) error {
		q, err := parseQuota(v)
		if err != nil {
			return fmt.Errorf("-default-quota: %w", err)
		}
		defaultQuota = q
		return nil
	})
	tables := map[string]string{}
	fs.Func("table", "relation as name=path.csv (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-table wants name=path, got %q", v)
		}
		tables[name] = path
		return nil
	})
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "pdbserve: ", log.LstdFlags)
	if *shard {
		return runShard(*addr, *shardWorkers, *shardCache, logger)
	}
	peers := splitPeers(*peersFlag)
	if *coordinator && len(peers) == 0 {
		return errors.New("-coordinator needs -peers host:port[,host:port...]")
	}

	var globs []string
	switch *format {
	case "auto":
		globs = []string{"*.csv", "*.pdbs"}
	case "csv":
		globs = []string{"*.csv"}
	case "pdbstore":
		globs = []string{"*.pdbs"}
	default:
		return fmt.Errorf("-format must be auto, csv, or pdbstore; got %q", *format)
	}
	if *datadir != "" {
		for _, g := range globs {
			matches, err := filepath.Glob(filepath.Join(*datadir, g))
			if err != nil {
				return err
			}
			for _, m := range matches {
				name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(m), ".csv"), ".pdbs")
				if _, dup := tables[name]; !dup {
					tables[name] = m
				}
			}
		}
	}
	if len(tables) == 0 {
		return errors.New("no relations: pass -table name=path.csv and/or -datadir dir")
	}

	// -quota-file supersedes any -tenant/-default-quota flags and becomes
	// the reload source.
	var reloader func() (map[string]server.Quota, server.Quota, error)
	if *quotaFile != "" {
		reloader = func() (map[string]server.Quota, server.Quota, error) {
			return parseQuotaFile(*quotaFile)
		}
		q, dq, err := reloader()
		if err != nil {
			return err
		}
		quotas, defaultQuota = q, dq
	}

	db, err := pdb.Open(tables)
	if err != nil {
		return err
	}
	engOpts := []pdb.EngineOption{pdb.WithEngineCacheSize(*cacheSize)}
	if len(peers) > 0 {
		engOpts = append(engOpts, pdb.WithEngineCluster(pdb.ClusterOptions{
			Peers:            peers,
			RequestTimeout:   *clusterTimeout,
			Retries:          *clusterRetries,
			BreakerThreshold: *breakerThreshold,
			ProbeInterval:    *probeInterval,
			HedgeAfter:       *hedgeAfter,
			LocalFallback:    *localFallback,
		}))
	}
	eng, err := db.Engine(engOpts...)
	if err != nil {
		return err
	}
	defer eng.Close()
	if len(peers) > 0 {
		// Probe the peer set at boot. Unreachable shards trip their
		// breakers immediately (instead of on the first query), but only a
		// fully-dead peer set with no local fallback is fatal — a partial
		// outage is exactly what failover exists for.
		probeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		healthy, total := eng.ProbeCluster(probeCtx)
		cancel()
		switch {
		case healthy == total:
			logger.Printf("coordinating %d shard(s): %s", total, strings.Join(peers, ", "))
		case healthy > 0 || *localFallback:
			logger.Printf("coordinating %d/%d healthy shard(s) (degraded; breakers open on the rest): %s",
				healthy, total, strings.Join(peers, ", "))
		default:
			return fmt.Errorf("cluster probe: 0/%d shards reachable and -local-fallback is off", total)
		}
	}
	handler, err := server.New(server.Config{
		Engine:         eng,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxTrials:      *maxTrials,
		MaxMemory:      *maxMemory,
		MaxWorkers:     *maxWorkers,
		SpillDir:       *spillDir,
		TenantHeader:   *tenantHeader,
		RequireTenant:  *requireTenant,
		StrictTenants:  *strictTenants,
		Quotas:         quotas,
		DefaultQuota:   defaultQuota,
		MaxInFlight:    *maxInFlight,
		AdmissionQueue: *admissionQueue,
		AdmissionWait:  *admissionWait,
		QuotaReloader:  reloader,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	if reloader != nil {
		// SIGHUP re-reads the quota file; a bad file logs and keeps the
		// previous quotas.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				if err := handler.ReloadQuotas(); err != nil {
					logger.Printf("quota reload failed: %v", err)
				} else {
					logger.Printf("quotas reloaded from %s", *quotaFile)
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d relation(s) %v on %s", len(tables), db.Relations(), *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("bye")
	return nil
}

// runShard serves the binary shard protocol until SIGINT/SIGTERM. A
// shard holds no relations — tasks arrive self-contained over the wire —
// so it needs no -table/-datadir.
func runShard(addr string, workers, cacheChunks int, logger *log.Logger) error {
	sh := cluster.NewShard(cluster.ShardConfig{
		Workers:     workers,
		CacheChunks: cacheChunks,
		Logger:      logger,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("shard serving on %s", ln.Addr())
		errc <- sh.Serve(ln)
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shard shutting down")
	if err := sh.Close(); err != nil {
		return err
	}
	st := sh.Stats()
	logger.Printf("shard bye (%d requests, %d trials sampled, %d reused)",
		st.Requests, st.TrialsSampled, st.TrialsReused)
	return nil
}

// splitPeers parses the -peers flag.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}
