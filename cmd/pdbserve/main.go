// Command pdbserve runs the probabilistic-database query service: an HTTP
// front-end (see internal/server) over one long-lived pdb.Engine, so all
// clients share a content-keyed Karp–Luby cache and repeated queries
// resume each other's estimation work.
//
// Relations are loaded from CSV files (header row first), either
// explicitly or from a directory:
//
//	pdbserve -table people=data/people.csv -table obs=data/obs.csv
//	pdbserve -datadir examples/data            # every *.csv, named by stem
//
// Query it:
//
//	curl -s localhost:8080/v1/query -d '{"program":"conf (repairkey[id @ w](obs));"}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics      # Prometheus text exposition
//
// Multi-tenant fleets name tenants via a request header and bound each
// with a quota; global admission control caps concurrent evaluations:
//
//	pdbserve -datadir data -tenant-header X-Pdb-Tenant \
//	    -tenant team-a=max_concurrent:4,trials_per_sec:200000 \
//	    -default-quota max_concurrent:2 \
//	    -max-inflight 8 -admission-queue 16 -admission-wait 2s
//
// Over-quota and shed requests get 429 with a Retry-After header; see
// docs/OPERATIONS.md for the full flag, quota, and metrics reference and
// docs/API.md for the wire protocol.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get a drain window, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/pdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdbserve:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("pdbserve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	datadir := fs.String("datadir", "", "load every *.csv in this directory as a relation named by its file stem")
	cacheSize := fs.Int("cache", 4096, "engine estimator-cache entries (LRU beyond)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request evaluation timeout (0 disables)")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested timeouts (0 disables)")
	maxTrials := fs.Int64("max-trials", 0, "per-request sampled-trials cap (0 disables)")
	maxMemory := fs.Int64("max-memory", 0, "per-request materialized-bytes cap (0 disables)")
	maxWorkers := fs.Int("max-workers", 0, "cap on client-requested workers (0 = GOMAXPROCS, negative disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	tenantHeader := fs.String("tenant-header", "", "request header naming the tenant (e.g. X-Pdb-Tenant); empty disables tenant scoping")
	requireTenant := fs.Bool("require-tenant", false, "reject requests without the tenant header (403)")
	strictTenants := fs.Bool("strict-tenants", false, "reject tenants without a -tenant entry (403, allowlist mode)")
	maxInFlight := fs.Int("max-inflight", 0, "global cap on concurrent evaluations (0 disables admission control)")
	admissionQueue := fs.Int("admission-queue", 0, "requests that may wait for an evaluation slot before new arrivals get 429")
	admissionWait := fs.Duration("admission-wait", time.Second, "longest one request waits in the admission queue")
	quotas := map[string]server.Quota{}
	fs.Func("tenant", "tenant quota as name="+quotaSpecSyntax+" (repeatable)", func(v string) error {
		name, spec, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("-tenant wants name=spec, got %q", v)
		}
		q, err := parseQuota(spec)
		if err != nil {
			return fmt.Errorf("-tenant %s: %w", name, err)
		}
		quotas[name] = q
		return nil
	})
	var defaultQuota server.Quota
	fs.Func("default-quota", "quota for tenants without a -tenant entry, as "+quotaSpecSyntax, func(v string) error {
		q, err := parseQuota(v)
		if err != nil {
			return fmt.Errorf("-default-quota: %w", err)
		}
		defaultQuota = q
		return nil
	})
	tables := map[string]string{}
	fs.Func("table", "relation as name=path.csv (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-table wants name=path, got %q", v)
		}
		tables[name] = path
		return nil
	})
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}

	if *datadir != "" {
		matches, err := filepath.Glob(filepath.Join(*datadir, "*.csv"))
		if err != nil {
			return err
		}
		for _, m := range matches {
			name := strings.TrimSuffix(filepath.Base(m), ".csv")
			if _, dup := tables[name]; !dup {
				tables[name] = m
			}
		}
	}
	if len(tables) == 0 {
		return errors.New("no relations: pass -table name=path.csv and/or -datadir dir")
	}

	logger := log.New(os.Stderr, "pdbserve: ", log.LstdFlags)
	db, err := pdb.Open(tables)
	if err != nil {
		return err
	}
	eng, err := db.Engine(pdb.WithEngineCacheSize(*cacheSize))
	if err != nil {
		return err
	}
	handler, err := server.New(server.Config{
		Engine:         eng,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxTrials:      *maxTrials,
		MaxMemory:      *maxMemory,
		MaxWorkers:     *maxWorkers,
		TenantHeader:   *tenantHeader,
		RequireTenant:  *requireTenant,
		StrictTenants:  *strictTenants,
		Quotas:         quotas,
		DefaultQuota:   defaultQuota,
		MaxInFlight:    *maxInFlight,
		AdmissionQueue: *admissionQueue,
		AdmissionWait:  *admissionWait,
		Logger:         logger,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving %d relation(s) %v on %s", len(tables), db.Relations(), *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down (drain %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("bye")
	return nil
}
