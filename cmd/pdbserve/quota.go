package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/server"
)

// quotaSpecSyntax documents the -tenant / -default-quota value format.
const quotaSpecSyntax = "max_concurrent:N,trials_per_sec:N,burst:N,max_trials:N,max_memory:N"

// parseQuota parses a comma-separated list of key:value pairs into a
// server.Quota. Every key is optional; an empty spec is the unlimited
// quota (useful to allowlist a tenant under -strict-tenants without
// bounding it).
func parseQuota(spec string) (server.Quota, error) {
	var q server.Quota
	if strings.TrimSpace(spec) == "" {
		return q, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return q, fmt.Errorf("quota field %q wants key:value (syntax: %s)", pair, quotaSpecSyntax)
		}
		switch key {
		case "max_concurrent":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_concurrent %q: want a non-negative integer", val)
			}
			q.MaxConcurrent = n
		case "trials_per_sec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return q, fmt.Errorf("trials_per_sec %q: want a non-negative number", val)
			}
			q.TrialsPerSec = f
		case "burst":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("burst %q: want a non-negative integer", val)
			}
			q.TrialsBurst = n
		case "max_trials":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_trials %q: want a non-negative integer", val)
			}
			q.MaxTrials = n
		case "max_memory":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_memory %q: want a non-negative integer", val)
			}
			q.MaxMemory = n
		default:
			return q, fmt.Errorf("unknown quota field %q (syntax: %s)", key, quotaSpecSyntax)
		}
	}
	return q, nil
}
