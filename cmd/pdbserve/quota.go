package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/server"
)

// quotaSpecSyntax documents the -tenant / -default-quota value format.
const quotaSpecSyntax = "max_concurrent:N,trials_per_sec:N,burst:N,max_trials:N,max_memory:N"

// parseQuota parses a comma-separated list of key:value pairs into a
// server.Quota. Every key is optional; an empty spec is the unlimited
// quota (useful to allowlist a tenant under -strict-tenants without
// bounding it).
func parseQuota(spec string) (server.Quota, error) {
	var q server.Quota
	if strings.TrimSpace(spec) == "" {
		return q, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			return q, fmt.Errorf("quota field %q wants key:value (syntax: %s)", pair, quotaSpecSyntax)
		}
		switch key {
		case "max_concurrent":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_concurrent %q: want a non-negative integer", val)
			}
			q.MaxConcurrent = n
		case "trials_per_sec":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return q, fmt.Errorf("trials_per_sec %q: want a non-negative number", val)
			}
			q.TrialsPerSec = f
		case "burst":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("burst %q: want a non-negative integer", val)
			}
			q.TrialsBurst = n
		case "max_trials":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_trials %q: want a non-negative integer", val)
			}
			q.MaxTrials = n
		case "max_memory":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return q, fmt.Errorf("max_memory %q: want a non-negative integer", val)
			}
			q.MaxMemory = n
		default:
			return q, fmt.Errorf("unknown quota field %q (syntax: %s)", key, quotaSpecSyntax)
		}
	}
	return q, nil
}

// parseQuotaFile reads a -quota-file: one name=spec per line (same spec
// syntax as -tenant), blank lines and #-comments ignored. The reserved
// tenant name "default" sets the default quota. The whole file must
// parse for any of it to take effect — a reload never half-applies.
func parseQuotaFile(path string) (map[string]server.Quota, server.Quota, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, server.Quota{}, err
	}
	defer f.Close()
	quotas := map[string]server.Quota{}
	var def server.Quota
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, spec, ok := strings.Cut(line, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, server.Quota{}, fmt.Errorf("%s:%d: want name=%s", path, lineNo, quotaSpecSyntax)
		}
		q, err := parseQuota(strings.TrimSpace(spec))
		if err != nil {
			return nil, server.Quota{}, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		if name == "default" {
			def = q
			continue
		}
		if _, dup := quotas[name]; dup {
			return nil, server.Quota{}, fmt.Errorf("%s:%d: duplicate tenant %q", path, lineNo, name)
		}
		quotas[name] = q
	}
	if err := sc.Err(); err != nil {
		return nil, server.Quota{}, err
	}
	return quotas, def, nil
}
