// Command faultproxy runs a deterministic fault-injecting TCP proxy in
// front of one backend — the chaos harness for cluster smoke tests.
//
//	faultproxy -listen 127.0.0.1:19001 -backend 127.0.0.1:19101 \
//	    -seed 42 -fault "3=truncate,frames=1" -fault "default=pass"
//
// Signals drive live chaos: SIGUSR1 takes the proxy hard-down (new
// connections refused, live ones reset — a process kill), SIGUSR2 brings
// it back. SIGINT/SIGTERM print stats and exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/faultproxy"
)

type faultFlags struct {
	script faultproxy.Script
}

func (f *faultFlags) String() string { return "" }

func (f *faultFlags) Set(s string) error {
	target, spec, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("fault spec %q: want TARGET=ACTION[,k=v...]", s)
	}
	pol, err := faultproxy.ParsePolicy(spec)
	if err != nil {
		return err
	}
	if target == "default" {
		f.script.Default = pol
		return nil
	}
	n, err := strconv.Atoi(target)
	if err != nil || n < 1 {
		return fmt.Errorf("fault spec %q: target must be a connection number >= 1 or \"default\"", s)
	}
	if f.script.Conns == nil {
		f.script.Conns = map[int]faultproxy.Policy{}
	}
	f.script.Conns[n] = pol
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultproxy: ")
	var (
		listen  = flag.String("listen", "127.0.0.1:0", "address to listen on")
		backend = flag.String("backend", "", "backend address to proxy to (required)")
		seed    = flag.Int64("seed", 1, "seed for deterministic fault randomness")
		faults  faultFlags
	)
	flag.Var(&faults, "fault", `fault policy: "default=ACTION[,k=v...]" or "CONN=ACTION[,k=v...]" (repeatable; actions: pass, refuse, blackhole, truncate, delay; fields: latency=DUR, frames=N, bytes=N)`)
	flag.Parse()
	if *backend == "" {
		log.Fatal("-backend is required")
	}

	p := faultproxy.New(*backend, faults.script, *seed)
	if err := p.Start(*listen); err != nil {
		log.Fatal(err)
	}
	// The resolved address goes to stdout so scripts can capture it when
	// listening on :0.
	fmt.Println(p.Addr())
	log.Printf("proxying %s -> %s (seed %d)", p.Addr(), *backend, *seed)

	sigs := make(chan os.Signal, 4)
	signal.Notify(sigs, syscall.SIGUSR1, syscall.SIGUSR2, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		switch sig {
		case syscall.SIGUSR1:
			p.SetDown(true)
			log.Printf("DOWN (refusing + resetting connections)")
		case syscall.SIGUSR2:
			p.SetDown(false)
			log.Printf("UP")
		default:
			st := p.Stats()
			log.Printf("exiting: conns=%d refused=%d cut=%d blackholed=%d up=%dB down=%dB",
				st.Conns, st.Refused, st.Cut, st.Blackholed, st.BytesUp, st.BytesDown)
			p.Close()
			return
		}
	}
}
