// Command pdbrepro regenerates every experiment table of the reproduction
// (DESIGN.md's E1–E10: the paper's figures, worked examples, and
// quantitative theorems).
//
// Usage:
//
//	pdbrepro [-experiment all|E1|…|E10] [-seed N] [-quick] [-timeout 5m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		which   = flag.String("experiment", "all", "experiment id (E1..E10) or 'all'")
		seed    = flag.Int64("seed", 2008, "random seed (PODS'08 vintage)")
		quick   = flag.Bool("quick", false, "shrink trial counts for a fast pass")
		workers = flag.Int("workers", 0, "parallel estimation workers for engine-backed experiments (0 = GOMAXPROCS)")
		resume  = flag.Bool("resume", true, "reuse estimator state across σ̂ doubling restarts in engine-backed experiments (bit-identical; off re-samples from scratch)")
		timeout = flag.Duration("timeout", 0, "abort engine-backed evaluation after this duration (0 = no limit)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers, NoResume: !*resume, Ctx: ctx}
	if *which != "all" {
		run, title, ok := experiments.Lookup(*which)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use E1..E10 or all\n", *which)
			os.Exit(2)
		}
		if err := runOne(*which, title, run, cfg, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range experiments.All() {
		if err := runOne(e.ID, e.Title, e.Run, cfg, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func runOne(id, title string, run experiments.Runner, cfg experiments.Config, timeout time.Duration) error {
	fmt.Printf("=== %s — %s ===\n", id, title)
	summary, err := run(os.Stdout, cfg)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("%s: evaluation timed out after %s", id, timeout)
		}
		return fmt.Errorf("%s: %w", id, err)
	}
	fmt.Println("\nkey measurements:")
	summary.Print(os.Stdout)
	fmt.Println()
	return nil
}
